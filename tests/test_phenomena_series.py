"""Tests for fields, time series, and sampling-time selection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.phenomena import (
    CorrelatedField,
    HarmonicRegressionModel,
    OzoneTraceSynthesizer,
    residual_sum_of_squares,
    schedule_for_window,
    select_sampling_times,
)
from repro.phenomena.fields import stationary_deployment
from repro.phenomena.sampling_times import window_series
from repro.spatial import Location


class TestCorrelatedField:
    def test_value_constant_within_cell(self):
        field = CorrelatedField(np.random.default_rng(0))
        a = field.value_at(Location(3.1, 4.2))
        b = field.value_at(Location(3.9, 4.8))
        assert a == b  # same grid cell

    def test_values_differ_between_distant_cells(self):
        field = CorrelatedField(np.random.default_rng(0))
        values = [field.value_at(Location(x + 0.5, 0.5)) for x in range(20)]
        assert len(set(values)) > 1

    def test_spatial_correlation(self):
        """Neighbouring cells are closer in value than far-apart ones."""
        field = CorrelatedField(np.random.default_rng(1))
        near_diffs, far_diffs = [], []
        for x in range(10):
            base = field.value_at(Location(x + 0.5, 5.5))
            near_diffs.append(abs(base - field.value_at(Location(x + 0.5, 6.5))))
            far_diffs.append(abs(base - field.value_at(Location((x + 10) % 20 + 0.5, 14.5))))
        assert np.mean(near_diffs) < np.mean(far_diffs)

    def test_static_field_does_not_drift(self):
        field = CorrelatedField(np.random.default_rng(2), temporal_rho=1.0)
        before = field.value_at(Location(5.5, 5.5))
        field.advance()
        assert field.value_at(Location(5.5, 5.5)) == before

    def test_ar_drift_changes_values(self):
        field = CorrelatedField(np.random.default_rng(2), temporal_rho=0.9)
        before = field.cell_values().copy()
        field.advance()
        assert not np.allclose(before, field.cell_values())

    def test_reading_noise_scales_with_inaccuracy(self):
        field = CorrelatedField(np.random.default_rng(3))
        rng = np.random.default_rng(4)
        loc = Location(5.5, 5.5)
        precise = [field.reading(loc, 0.0, rng) for _ in range(50)]
        noisy = [field.reading(loc, 0.2, rng) for _ in range(50)]
        assert np.std(precise) < np.std(noisy)

    def test_training_sample_fraction(self):
        field = CorrelatedField(np.random.default_rng(5))
        locs, values = field.training_sample(0.25, np.random.default_rng(6))
        assert len(locs) == len(values)
        assert len(locs) == max(3, round(0.25 * 300))

    def test_training_sample_invalid_fraction(self):
        field = CorrelatedField(np.random.default_rng(5))
        with pytest.raises(ValueError):
            field.training_sample(0.0, np.random.default_rng(6))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CorrelatedField(np.random.default_rng(0), temporal_rho=0.0)
        with pytest.raises(ValueError):
            CorrelatedField(np.random.default_rng(0), innovation_scale=-1.0)

    def test_stationary_deployment(self):
        field = CorrelatedField(np.random.default_rng(7))
        locs, values = stationary_deployment(field, stride=3)
        assert len(locs) == len(values)
        assert all(field.value_at(l) == v for l, v in zip(locs, values))


class TestOzoneSynthesizer:
    def test_length_and_determinism(self):
        syn = OzoneTraceSynthesizer()
        a = syn.generate(50, np.random.default_rng(0))
        b = syn.generate(50, np.random.default_rng(0))
        assert len(a) == 50
        assert np.allclose(a, b)

    def test_periodic_structure_dominates_noise(self):
        syn = OzoneTraceSynthesizer(period=50, noise_std=1.0)
        series = syn.generate(100, np.random.default_rng(1))
        # Same phase, one period apart: closer than anti-phase points.
        same_phase = np.abs(series[:50] - series[50:]).mean()
        anti_phase = np.abs(series[:50] - np.roll(series[:50], 25)).mean()
        assert same_phase < anti_phase

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            OzoneTraceSynthesizer(period=1)
        with pytest.raises(ValueError):
            OzoneTraceSynthesizer(ar_coefficient=1.0)
        with pytest.raises(ValueError):
            OzoneTraceSynthesizer(noise_std=-1.0)
        with pytest.raises(ValueError):
            OzoneTraceSynthesizer().generate(0, np.random.default_rng(0))


class TestHarmonicRegression:
    def test_design_matrix_width(self):
        model = HarmonicRegressionModel(50, n_harmonics=2)
        assert model.n_features == 6
        assert model.design_matrix([0, 1, 2]).shape == (3, 6)

    def test_fit_predict_on_clean_harmonic(self):
        model = HarmonicRegressionModel(20, n_harmonics=1, ridge=1e-8)
        t = np.arange(20)
        y = 3.0 + 0.1 * t + 2.0 * np.sin(2 * np.pi * t / 20)
        coef = model.fit(list(t), y)
        pred = model.predict(coef, list(t))
        assert np.allclose(pred, y, atol=1e-6)

    def test_residuals_zero_when_fit_on_everything(self):
        model = HarmonicRegressionModel(20, n_harmonics=1, ridge=1e-8)
        t = np.arange(20)
        y = 1.0 + np.cos(2 * np.pi * t / 20)
        res = model.residuals(y, list(t))
        assert np.abs(res).max() < 1e-6

    def test_underdetermined_fit_is_stable_with_ridge(self):
        model = HarmonicRegressionModel(50, n_harmonics=2, ridge=0.3)
        series = np.sin(np.arange(50) / 5.0) * 10 + 40
        res = model.residuals(series, [3])
        assert np.isfinite(res).all()
        # One regularized sample must NOT explain the series better than
        # a fit on many well-spread samples.
        many = residual_sum_of_squares(model, series, list(range(0, 50, 5)))
        single = residual_sum_of_squares(model, series, [3])
        assert single > many

    def test_empty_fit_raises(self):
        model = HarmonicRegressionModel(10)
        with pytest.raises(ValueError):
            model.fit([], [])

    def test_residuals_with_no_samples_are_centered_series(self):
        model = HarmonicRegressionModel(10)
        series = np.array([1.0, 2.0, 3.0])
        res = model.residuals(series, [])
        assert res == pytest.approx(series - series.mean())

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            HarmonicRegressionModel(1)
        with pytest.raises(ValueError):
            HarmonicRegressionModel(10, n_harmonics=-1)
        with pytest.raises(ValueError):
            HarmonicRegressionModel(10, ridge=-0.1)


class TestSamplingTimeSelection:
    def _series(self, n=50):
        return OzoneTraceSynthesizer().generate(n, np.random.default_rng(0))

    def test_selects_k_distinct_times(self):
        model = HarmonicRegressionModel(50, 1)
        chosen = select_sampling_times(self._series(), 5, model)
        assert len(chosen) == 5
        assert len(set(chosen)) == 5
        assert chosen == sorted(chosen)

    def test_more_samples_never_hurt_ssr(self):
        model = HarmonicRegressionModel(50, 1)
        series = self._series()
        few = select_sampling_times(series, 3, model)
        many = select_sampling_times(series, 8, model)
        assert residual_sum_of_squares(model, series, many) <= residual_sum_of_squares(
            model, series, few
        ) + 1e-9

    def test_greedy_beats_worst_choice(self):
        model = HarmonicRegressionModel(50, 1)
        series = self._series()
        chosen = select_sampling_times(series, 4, model)
        clustered = [0, 1, 2, 3]
        assert residual_sum_of_squares(model, series, chosen) <= residual_sum_of_squares(
            model, series, clustered
        ) + 1e-9

    def test_candidates_restriction(self):
        model = HarmonicRegressionModel(50, 1)
        chosen = select_sampling_times(self._series(), 3, model, candidates=range(10, 20))
        assert all(10 <= t < 20 for t in chosen)

    def test_invalid_k(self):
        model = HarmonicRegressionModel(50, 1)
        with pytest.raises(ValueError):
            select_sampling_times(self._series(), 100, model)

    def test_invalid_candidates(self):
        model = HarmonicRegressionModel(50, 1)
        with pytest.raises(ValueError):
            select_sampling_times(self._series(), 2, model, candidates=[999])


class TestScheduleForWindow:
    def test_times_inside_window(self):
        series = OzoneTraceSynthesizer().generate(50, np.random.default_rng(0))
        model = HarmonicRegressionModel(50, 1)
        times = schedule_for_window(series, start=12, duration=15, k=5, model=model)
        assert all(12 <= t < 27 for t in times)
        assert len(times) == 5

    def test_k_capped_by_duration(self):
        series = OzoneTraceSynthesizer().generate(50, np.random.default_rng(0))
        model = HarmonicRegressionModel(50, 1)
        times = schedule_for_window(series, start=0, duration=3, k=10, model=model)
        assert len(times) == 3

    def test_window_series_wraps(self):
        series = np.arange(10.0)
        window = window_series(series, start=8, duration=5)
        assert window == pytest.approx([8, 9, 0, 1, 2])

    def test_window_series_invalid(self):
        with pytest.raises(ValueError):
            window_series(np.arange(5.0), 0, 0)
        with pytest.raises(ValueError):
            window_series(np.array([]), 0, 3)
