"""Trust assignment for sensors.

The paper assumes "a trust assessment mechanism in place which assigns
trustworthiness values to the sensors upon initialization" (Section 4.1) and
keeps trust fixed over a simulation.  This module is that mechanism's stand-
in: pluggable distributions that draw per-sensor trust values, including the
sweeps behind the Section 4.7 observation that "the more trustworthy the
sensors are, the more utility they bring".

Every model samples the whole population in one vectorized draw; the
resulting array feeds :class:`~repro.sensors.state.FleetState` directly
(the array-backed fleet keeps trust stacked, never per-object).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

__all__ = [
    "TrustModel",
    "FullTrust",
    "UniformTrust",
    "BetaTrust",
    "TieredTrust",
]


class TrustModel(Protocol):
    """Draws trust values in ``[0, 1]`` for a population of sensors."""

    def sample(self, n_sensors: int, rng: np.random.Generator) -> np.ndarray: ...


@dataclass(frozen=True)
class FullTrust:
    """Every sensor fully trusted (tau = 1) — the paper's default."""

    def sample(self, n_sensors: int, rng: np.random.Generator) -> np.ndarray:
        return np.ones(n_sensors)


@dataclass(frozen=True)
class UniformTrust:
    """Trust ~ U[low, high]."""

    low: float = 0.0
    high: float = 1.0

    def __post_init__(self) -> None:
        if not (0.0 <= self.low <= self.high <= 1.0):
            raise ValueError("need 0 <= low <= high <= 1")

    def sample(self, n_sensors: int, rng: np.random.Generator) -> np.ndarray:
        return rng.uniform(self.low, self.high, size=n_sensors)


@dataclass(frozen=True)
class BetaTrust:
    """Trust ~ Beta(a, b) — lets experiments skew towards (un)trustworthy."""

    a: float = 5.0
    b: float = 2.0

    def __post_init__(self) -> None:
        if self.a <= 0 or self.b <= 0:
            raise ValueError("beta shape parameters must be positive")

    def sample(self, n_sensors: int, rng: np.random.Generator) -> np.ndarray:
        return rng.beta(self.a, self.b, size=n_sensors)


@dataclass(frozen=True)
class TieredTrust:
    """A discrete mixture, e.g. 70% trusted (1.0), 20% medium, 10% poor.

    ``levels`` are the trust values, ``weights`` their probabilities.
    """

    levels: tuple[float, ...] = (1.0, 0.6, 0.2)
    weights: tuple[float, ...] = (0.7, 0.2, 0.1)

    def __post_init__(self) -> None:
        if len(self.levels) != len(self.weights) or not self.levels:
            raise ValueError("levels and weights must be equal-length and non-empty")
        if any(not (0.0 <= lv <= 1.0) for lv in self.levels):
            raise ValueError("trust levels must lie in [0, 1]")
        if any(w < 0 for w in self.weights) or abs(sum(self.weights) - 1.0) > 1e-9:
            raise ValueError("weights must be non-negative and sum to 1")

    def sample(self, n_sensors: int, rng: np.random.Generator) -> np.ndarray:
        choices = rng.choice(len(self.levels), size=n_sensors, p=self.weights)
        return np.asarray(self.levels, dtype=float)[choices]
