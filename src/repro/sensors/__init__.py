"""Sensor substrate: entities, cost models, trust, fleet management."""

from .costs import (
    EnergyCostModel,
    FixedEnergyCost,
    LinearEnergyCost,
    PrivacyCostModel,
    PrivacySensitivity,
    privacy_loss,
    total_cost,
)
from .fleet import FleetConfig, SensorFleet
from .reputation import BetaReputationTracker, ReputationRecord
from .sensor import Sensor, SensorSnapshot
from .state import AnnouncementBatch, FleetState, SlotDelta
from .trust import BetaTrust, FullTrust, TieredTrust, TrustModel, UniformTrust

__all__ = [
    "Sensor",
    "SensorSnapshot",
    "SensorFleet",
    "FleetConfig",
    "FleetState",
    "SlotDelta",
    "AnnouncementBatch",
    "EnergyCostModel",
    "FixedEnergyCost",
    "LinearEnergyCost",
    "PrivacyCostModel",
    "PrivacySensitivity",
    "privacy_loss",
    "total_cost",
    "TrustModel",
    "BetaReputationTracker",
    "ReputationRecord",
    "FullTrust",
    "UniformTrust",
    "BetaTrust",
    "TieredTrust",
]
