"""The vectorized PointProblem value matrix must agree with the scalar
eq. 3/4 implementation on PointQuery — property-tested."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import make_point_query, make_snapshot
from repro.core.point_problem import PointProblem

budgets = st.floats(1.0, 40.0)
coords = st.floats(0.0, 20.0)
fractions = st.floats(0.0, 1.0)


@given(
    st.lists(
        st.tuples(coords, coords, budgets, st.floats(0.0, 0.5)),
        min_size=1,
        max_size=6,
    ),
    st.lists(
        st.tuples(coords, coords, st.floats(0.0, 0.3), fractions),
        min_size=1,
        max_size=6,
    ),
)
@settings(max_examples=50, deadline=None)
def test_matrix_matches_scalar_valuation(query_specs, sensor_specs):
    queries = [
        make_point_query(x=x, y=y, budget=b, theta_min=tmin, dmax=6.0)
        for x, y, b, tmin in query_specs
    ]
    sensors = [
        make_snapshot(i, x=x, y=y, cost=10.0, inaccuracy=g, trust=tau)
        for i, (x, y, g, tau) in enumerate(sensor_specs)
    ]
    problem = PointProblem.build(queries, sensors)
    # Per-query rows match value_single exactly.
    for query in queries:
        row = problem.query_values[query.query_id]
        for j, snapshot in enumerate(sensors):
            assert row[j] == pytest.approx(query.value_single(snapshot), abs=1e-9)
    # Aggregated per-location matrix is the sum over co-located queries.
    for r, (loc, grouped) in enumerate(
        zip(problem.locations, problem.location_queries)
    ):
        expected = np.zeros(len(sensors))
        for query in grouped:
            expected += problem.query_values[query.query_id]
        assert np.allclose(problem.values[r], expected, atol=1e-9)
