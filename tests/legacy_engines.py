"""Verbatim copy of the pre-refactor simulation engines (parity reference).

These are the four hand-rolled slot loops the :class:`repro.core.SlotEngine`
replaced, kept byte-for-byte (imports aside) so the engine-parity test can
prove the unified engine reproduces the seed behavior on identical seeds.
Do not "fix" or modernize this module — its value is being frozen.
"""

from __future__ import annotations

from typing import Protocol, Sequence

import numpy as np

from repro.core.allocation import AllocationResult, Allocator
from repro.core.baselines import BaselineAllocator
from repro.core.metrics import SimulationSummary, SlotRecord
from repro.core.mix import BaselineMixAllocator, MixAllocator
from repro.core.monitoring import (
    LocationMonitoringController,
    RegionMonitoringController,
)
from repro.queries import (
    LocationMonitoringQuery,
    PointQuery,
    Query,
    RegionMonitoringQuery,
)
from repro.sensors import SensorFleet, SensorSnapshot

__all__ = [
    "LegacyOneShotSimulation",
    "LegacyLocationMonitoringSimulation",
    "LegacyRegionMonitoringSimulation",
    "LegacyMixSimulation",
]


class OneShotWorkload(Protocol):
    """Anything that emits fresh one-shot queries per slot."""

    def generate(self, t: int, rng: np.random.Generator) -> list[Query]: ...


def _quality_of(query: Query, value: float) -> float:
    """Achieved value over the query's reference maximum."""
    if query.max_value <= 0:
        return 0.0
    return value / query.max_value


class LegacyOneShotSimulation:
    """Figures 2-7: a stream of one-shot (point or aggregate) queries.

    Args:
        fleet: the sensor fleet (owns mobility, costs, lifetime).
        workload: per-slot query generator.
        allocator: the algorithm under test.
        rng: drives the workload only — mobility randomness lives in the
            fleet, so two engines sharing a replayed trace and the same
            workload seed compare algorithms on identical inputs.
    """

    def __init__(
        self,
        fleet: SensorFleet,
        workload: OneShotWorkload,
        allocator: Allocator,
        rng: np.random.Generator,
    ) -> None:
        self.fleet = fleet
        self.workload = workload
        self.allocator = allocator
        self.rng = rng

    def run(self, n_slots: int) -> SimulationSummary:
        summary = SimulationSummary()
        for t in range(n_slots):
            sensors = self.fleet.announcements()
            queries = self.workload.generate(t, self.rng)
            result = self.allocator.allocate(queries, sensors)
            record = SlotRecord(
                slot=t,
                value=result.total_value,
                cost=result.total_cost,
                issued=len(queries),
                answered=result.answered_count(),
            )
            for query in queries:
                if result.is_answered(query.query_id):
                    value = result.values[query.query_id]
                    quality = _quality_of(query, value)
                    record.qualities.append(quality)
                    label = query.query_type.value
                    summary.add_quality(label, quality)
                summary.record_query_outcome(result.query_utility(query.query_id))
            summary.slots.append(record)
            self.fleet.record_measurements(list(result.selected))
            self.fleet.advance()
        return summary


class LegacyLocationMonitoringSimulation:
    """Figure 8: continuous location-monitoring queries.

    ``controller`` decides how point queries are derived (Algorithm 2, or
    its desired-times-only baseline); ``point_allocator`` answers them
    (Optimal = "Alg2-O", LocalSearch = "Alg2-LS", Baseline = "Baseline").
    """

    def __init__(
        self,
        fleet: SensorFleet,
        workload,
        point_allocator: Allocator,
        rng: np.random.Generator,
        controller: LocationMonitoringController | None = None,
    ) -> None:
        self.fleet = fleet
        self.workload = workload
        self.point_allocator = point_allocator
        self.rng = rng
        self.controller = (
            controller if controller is not None else LocationMonitoringController()
        )
        self.live: list[LocationMonitoringQuery] = []

    def run(self, n_slots: int) -> SimulationSummary:
        summary = SimulationSummary()
        for t in range(n_slots):
            self._retire(t, summary)
            self.live.extend(self.workload.generate(t, self.rng, live_count=len(self.live)))
            sensors = self.fleet.announcements()
            children = self.controller.create_point_queries(self.live, t)
            result = self.point_allocator.allocate(children, sensors)
            samples, value_delta = self.controller.apply_results(
                self.live, children, result, t
            )
            summary.slots.append(
                SlotRecord(
                    slot=t,
                    value=value_delta,
                    cost=result.total_cost,
                    issued=len(children),
                    answered=result.answered_count(),
                    extras={"samples": float(samples), "live": float(len(self.live))},
                )
            )
            self.fleet.record_measurements(list(result.selected))
            self.fleet.advance()
        self._retire(n_slots + 10**9, summary)  # flush everything at the end
        return summary

    def _retire(self, t: int, summary: SimulationSummary) -> None:
        remaining: list[LocationMonitoringQuery] = []
        for query in self.live:
            if query.expired(t):
                summary.add_quality("location_monitoring", query.quality_of_results())
                summary.record_query_outcome(query.achieved_value() - query.spent)
            else:
                remaining.append(query)
        self.live = remaining


class LegacyRegionMonitoringSimulation:
    """Figure 9: continuous region-monitoring queries over a GP field."""

    def __init__(
        self,
        fleet: SensorFleet,
        workload,
        point_allocator: Allocator,
        rng: np.random.Generator,
        controller: RegionMonitoringController | None = None,
    ) -> None:
        self.fleet = fleet
        self.workload = workload
        self.point_allocator = point_allocator
        self.rng = rng
        self.controller = (
            controller if controller is not None else RegionMonitoringController()
        )
        self.live: list[RegionMonitoringQuery] = []

    def run(self, n_slots: int) -> SimulationSummary:
        summary = SimulationSummary()
        for t in range(n_slots):
            self._retire(t, summary)
            self.live.extend(self.workload.generate(t, self.rng))
            sensors = self.fleet.announcements()
            children, plans = self.controller.create_point_queries(
                self.live, sensors, t
            )
            result = self.point_allocator.allocate(children, sensors)
            outcomes = self.controller.apply_results(
                self.live, children, plans, result, t
            )
            self.controller.adjust_payments(result, outcomes)
            achieved = sum(o.achieved_value for o in outcomes)
            summary.slots.append(
                SlotRecord(
                    slot=t,
                    value=achieved,
                    cost=result.total_cost,
                    issued=len(children),
                    answered=result.answered_count(),
                    extras={"live": float(len(self.live))},
                )
            )
            self.fleet.record_measurements(list(result.selected))
            self.fleet.advance()
        self._retire(n_slots + 10**9, summary)
        return summary

    def _retire(self, t: int, summary: SimulationSummary) -> None:
        remaining: list[RegionMonitoringQuery] = []
        for query in self.live:
            if query.expired(t):
                summary.add_quality("region_monitoring", query.quality_of_results())
                summary.record_query_outcome(query.total_value() - query.spent)
            else:
                remaining.append(query)
        self.live = remaining


class LegacyMixSimulation:
    """Figure 10: point + aggregate + location monitoring together.

    ``mix`` is either :class:`MixAllocator` (Algorithm 5) or
    :class:`BaselineMixAllocator`.  Region monitoring can be included but
    the paper's Figure 10 excludes it (no measurement data in RNC); pass
    ``region_workload=None`` to reproduce that.
    """

    def __init__(
        self,
        fleet: SensorFleet,
        point_workload,
        aggregate_workload,
        location_workload,
        mix: MixAllocator | BaselineMixAllocator,
        rng: np.random.Generator,
        region_workload=None,
    ) -> None:
        self.fleet = fleet
        self.point_workload = point_workload
        self.aggregate_workload = aggregate_workload
        self.location_workload = location_workload
        self.region_workload = region_workload
        self.mix = mix
        self.rng = rng
        self.live_lm: list[LocationMonitoringQuery] = []
        self.live_rm: list[RegionMonitoringQuery] = []

    def run(self, n_slots: int) -> SimulationSummary:
        summary = SimulationSummary()
        for t in range(n_slots):
            self._retire(t, summary)
            points: list[PointQuery] = self.point_workload.generate(t, self.rng)
            aggregates = self.aggregate_workload.generate(t, self.rng)
            self.live_lm.extend(
                self.location_workload.generate(t, self.rng, live_count=len(self.live_lm))
            )
            if self.region_workload is not None:
                self.live_rm.extend(self.region_workload.generate(t, self.rng))
            sensors = self.fleet.announcements()
            outcome = self.mix.allocate_slot(
                t, points, aggregates, self.live_lm, self.live_rm, sensors
            )
            result = outcome.result
            record = SlotRecord(
                slot=t,
                value=outcome.total_utility + result.total_cost,
                cost=result.total_cost,
                issued=len(points),
                extras={"lm_samples": float(outcome.lm_samples)},
            )
            for query in points:
                if result.is_answered(query.query_id):
                    record.answered += 1
                    quality = _quality_of(query, result.values[query.query_id])
                    summary.add_quality("point", quality)
                summary.record_query_outcome(result.query_utility(query.query_id))
            for query in aggregates:
                if result.is_answered(query.query_id):
                    quality = _quality_of(query, result.values[query.query_id])
                    summary.add_quality("aggregate", quality)
                summary.record_query_outcome(result.query_utility(query.query_id))
            summary.slots.append(record)
            self.fleet.record_measurements(list(result.selected))
            self.fleet.advance()
        self._retire(n_slots + 10**9, summary)
        return summary

    def _retire(self, t: int, summary: SimulationSummary) -> None:
        live: list[LocationMonitoringQuery] = []
        for query in self.live_lm:
            if query.expired(t):
                summary.add_quality("location_monitoring", query.quality_of_results())
                summary.record_query_outcome(query.achieved_value() - query.spent)
            else:
                live.append(query)
        self.live_lm = live
        live_rm: list[RegionMonitoringQuery] = []
        for query in self.live_rm:
            if query.expired(t):
                summary.add_quality("region_monitoring", query.quality_of_results())
                summary.record_query_outcome(query.total_value() - query.spent)
            else:
                live_rm.append(query)
        self.live_rm = live_rm
