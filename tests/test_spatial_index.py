"""Unit tests for the uniform-grid point index behind the sharding layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.spatial import UniformGridIndex


def brute_disk(xy, x, y, r):
    d = np.hypot(xy[:, 0] - x, xy[:, 1] - y)
    return set(np.flatnonzero(d <= r).tolist())


def brute_box(xy, x0, x1, y0, y1):
    inside = (xy[:, 0] >= x0) & (xy[:, 0] <= x1) & (xy[:, 1] >= y0) & (xy[:, 1] <= y1)
    return set(np.flatnonzero(inside).tolist())


class TestConstruction:
    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            UniformGridIndex(np.zeros((3, 3)), 1.0)
        with pytest.raises(ValueError):
            UniformGridIndex(np.zeros((3, 2)), 0.0)

    def test_empty_index(self):
        index = UniformGridIndex(np.zeros((0, 2)), 1.0)
        assert index.n_points == 0
        assert index.n_shards == 0
        assert len(index.indices_in_disk(0.0, 0.0, 10.0)) == 0
        assert len(index.members((0, 0))) == 0
        assert list(index.shards()) == []

    def test_single_point(self):
        index = UniformGridIndex(np.array([[3.0, 4.0]]), 2.0)
        assert index.n_shards == 1
        assert index.indices_in_disk(3.0, 4.0, 0.0).tolist() == [0]
        assert len(index.indices_in_disk(100.0, 100.0, 1.0)) == 0

    def test_every_point_bucketed_once(self):
        rng = np.random.default_rng(0)
        xy = rng.uniform(-50, 50, size=(300, 2))
        index = UniformGridIndex(xy, 7.0)
        seen = np.concatenate([members for _, members in index.shards()])
        assert sorted(seen.tolist()) == list(range(300))

    def test_members_matches_cell_of(self):
        rng = np.random.default_rng(1)
        xy = rng.uniform(0, 30, size=(100, 2))
        index = UniformGridIndex(xy, 4.0)
        for j in range(100):
            cell = index.cell_of(xy[j, 0], xy[j, 1])
            assert j in index.members(cell)


class TestBoxQueries:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("cell", [0.5, 3.0, 11.0, 200.0])
    def test_disk_candidates_are_supersets(self, seed, cell):
        rng = np.random.default_rng(seed)
        xy = rng.uniform(-20, 60, size=(150, 2))
        index = UniformGridIndex(xy, cell)
        for _ in range(20):
            x, y = rng.uniform(-30, 70, size=2)
            r = float(rng.uniform(0, 15))
            got = set(index.indices_in_disk(x, y, r).tolist())
            assert brute_disk(xy, x, y, r) <= got

    @pytest.mark.parametrize("seed", range(5))
    def test_box_candidates_are_supersets(self, seed):
        rng = np.random.default_rng(100 + seed)
        xy = rng.uniform(0, 40, size=(120, 2))
        index = UniformGridIndex(xy, 3.0)
        for _ in range(20):
            x0, y0 = rng.uniform(-5, 35, size=2)
            x1, y1 = x0 + rng.uniform(0, 15), y0 + rng.uniform(0, 15)
            got = set(index.indices_in_box(x0, x1, y0, y1).tolist())
            assert brute_box(xy, x0, x1, y0, y1) <= got

    def test_results_are_sorted_and_unique(self):
        rng = np.random.default_rng(42)
        xy = rng.uniform(0, 20, size=(80, 2))
        index = UniformGridIndex(xy, 2.5)
        got = index.indices_in_disk(10.0, 10.0, 6.0)
        assert got.tolist() == sorted(set(got.tolist()))

    def test_whole_grid_query_returns_everything(self):
        rng = np.random.default_rng(3)
        xy = rng.uniform(0, 10, size=(50, 2))
        index = UniformGridIndex(xy, 1.0)
        got = index.indices_in_box(-100.0, 100.0, -100.0, 100.0)
        assert got.tolist() == list(range(50))

    def test_disjoint_query_is_empty(self):
        xy = np.array([[0.0, 0.0], [1.0, 1.0]])
        index = UniformGridIndex(xy, 1.0)
        assert len(index.indices_in_box(50.0, 60.0, 50.0, 60.0)) == 0
        assert index.cell_range(50.0, 60.0, 50.0, 60.0) is None

    def test_unclipped_cell_range_does_not_bleed_between_columns(self):
        # A row bound beyond n_rows must not let the linearized key window
        # pick up the neighbouring column's buckets.
        xy = np.array([[0.5, 0.5], [0.5, 1.5], [1.5, 0.5]])
        index = UniformGridIndex(xy, 1.0)
        got = index.indices_in_cell_range(0, 0, 0, 5)
        assert got.tolist() == [0, 1]  # column-0 members only
        assert len(index.indices_in_cell_range(5, 9, 0, 0)) == 0

    def test_negative_radius_rejected(self):
        index = UniformGridIndex(np.array([[0.0, 0.0]]), 1.0)
        with pytest.raises(ValueError):
            index.indices_in_disk(0.0, 0.0, -1.0)

    def test_colinear_points(self):
        xy = np.array([[float(i), 5.0] for i in range(30)])
        index = UniformGridIndex(xy, 2.0)
        assert index.n_rows == 1
        got = set(index.indices_in_disk(10.0, 5.0, 3.0).tolist())
        assert brute_disk(xy, 10.0, 5.0, 3.0) <= got

    def test_points_on_cell_boundaries(self):
        # Integer coordinates on integer cell edges: every point must land
        # in exactly one bucket and still be found by touching queries.
        xy = np.array(
            [[float(c), float(r)] for c in range(5) for r in range(5)]
        )
        index = UniformGridIndex(xy, 1.0)
        seen = np.concatenate([m for _, m in index.shards()])
        assert sorted(seen.tolist()) == list(range(25))
        got = set(index.indices_in_disk(2.0, 2.0, 1.0).tolist())
        assert brute_disk(xy, 2.0, 2.0, 1.0) <= got
