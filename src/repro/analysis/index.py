"""Parsed-module index shared by every lint rule (one ``ast.parse`` per file).

The index is the reason ``repro lint`` stays O(repo): each source file is
read, tokenized (for suppression pragmas) and parsed exactly once, and the
rules consume read-only views — the class table, the import alias maps,
the qualified-name resolver and the repo-wide defined-attribute table that
backs the capability-hook rule.

Rows (CHANGES-style):
    parse_suppressions - ``# reprolint: disable=rule(reason)`` comment map
    ClassInfo          - per-class bases / methods / attribute names
    ModuleIndex        - one file: AST + aliases + classes + suppressions
    RepoIndex          - all modules + defined-attribute / class-name tables
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

__all__ = [
    "ClassInfo",
    "ModuleIndex",
    "RepoIndex",
    "parse_suppressions",
]

_PRAGMA_RE = re.compile(r"#\s*reprolint:\s*disable=(?P<items>.+)$")


def _split_pragma_items(items: str) -> Iterator[str]:
    """Split ``rule-a(reason, with commas),rule-b`` on depth-0 commas."""
    depth, start = 0, 0
    for i, ch in enumerate(items):
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth = max(0, depth - 1)
        elif ch == "," and depth == 0:
            yield items[start:i]
            start = i + 1
    yield items[start:]


def parse_suppressions(source: str) -> dict[int, dict[str, str | None]]:
    """Per-line suppression pragmas: ``{line: {rule_id: reason | None}}``.

    An inline pragma applies to its own physical line; a pragma on a
    comment-only line applies to the immediately following line (handy for
    statements whose line is already long).  ``disable=all`` suppresses
    every rule.  A reason may follow the rule in parentheses and is kept
    for reporting: ``# reprolint: disable=hot-loop(scalar parity oracle)``.
    """
    out: dict[int, dict[str, str | None]] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return out
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _PRAGMA_RE.search(tok.string)
        if match is None:
            continue
        rules: dict[str, str | None] = {}
        for item in _split_pragma_items(match.group("items")):
            item = item.strip()
            if not item:
                continue
            if "(" in item and item.endswith(")"):
                rule, _, reason = item.partition("(")
                rules[rule.strip()] = reason[:-1].strip() or None
            else:
                rules[item] = None
        if not rules:
            continue
        line = tok.start[0]
        standalone = tok.line[: tok.start[1]].strip() == ""
        target = line + 1 if standalone else line
        out.setdefault(target, {}).update(rules)
    return out


@dataclass
class ClassInfo:
    """One class definition: its bases (as written) and defined names."""

    name: str
    lineno: int
    relpath: str
    bases: tuple[str, ...]
    methods: dict[str, int] = field(default_factory=dict)
    attrs: set[str] = field(default_factory=set)

    def defines(self, name: str) -> bool:
        return name in self.methods or name in self.attrs


def _dotted(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


class ModuleIndex:
    """One parsed source file and everything the rules ask of it."""

    def __init__(self, path: Path, relpath: str, source: str, tree: ast.Module):
        self.path = path
        self.relpath = relpath
        self.source = source
        self.tree = tree
        self.suppressions = parse_suppressions(source)
        #: ``import numpy as np``      -> {"np": "numpy"}
        self.import_aliases: dict[str, str] = {}
        #: ``from math import sqrt``   -> {"sqrt": "math.sqrt"}
        self.from_imports: dict[str, str] = {}
        self.classes: list[ClassInfo] = []
        #: attribute names this module defines somewhere (methods, class
        #: and ``self.x`` assignments, ``setattr(_, "x", _)``, __slots__)
        self.defined_attrs: dict[str, int] = {}
        #: every qualified name referenced anywhere (calls *and* bare
        #: references), e.g. {"numpy.hypot", "math.sqrt", ...}
        self.qualified_refs: set[str] = set()
        self._scan()

    @classmethod
    def from_file(cls, path: Path, relpath: str) -> "ModuleIndex | None":
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except (OSError, SyntaxError, ValueError):
            return None
        return cls(path, relpath, source, tree)

    # ------------------------------------------------------------------
    # qualified-name resolution
    # ------------------------------------------------------------------
    def qualified_name(self, node: ast.expr) -> str | None:
        """Resolve ``np.random.rand`` -> ``numpy.random.rand`` via imports.

        Returns ``None`` when the head name is not an import binding of
        this module (locals, attributes of locals, ...), so rules never
        mistake ``rng.random()`` for the ``random`` module.
        """
        dotted = _dotted(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        if head in self.from_imports:
            base = self.from_imports[head]
        elif head in self.import_aliases:
            base = self.import_aliases[head]
        else:
            return None
        return f"{base}.{rest}" if rest else base

    # ------------------------------------------------------------------
    # single indexing pass
    # ------------------------------------------------------------------
    def _scan(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.import_aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom):
                module = ("." * node.level) + (node.module or "")
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.from_imports[alias.asname or alias.name] = (
                        f"{module}.{alias.name}" if module else alias.name
                    )
            elif isinstance(node, ast.ClassDef):
                self._scan_class(node)
            elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        self.defined_attrs.setdefault(target.attr, target.lineno)
            elif isinstance(node, ast.Call):
                fn = node.func
                is_setattr = isinstance(fn, ast.Name) and fn.id == "setattr"
                is_dunder = isinstance(fn, ast.Attribute) and fn.attr == "__setattr__"
                if (is_setattr or is_dunder) and len(node.args) >= 2:
                    arg = node.args[1]
                    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                        self.defined_attrs.setdefault(arg.value, node.lineno)
        # Referenced qualified names (separate pass: cheap, read-only).
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.Attribute, ast.Name)):
                qualified = self.qualified_name(node)
                if qualified is not None:
                    self.qualified_refs.add(qualified)

    def _scan_class(self, node: ast.ClassDef) -> None:
        info = ClassInfo(
            name=node.name,
            lineno=node.lineno,
            relpath=self.relpath,
            bases=tuple(b for b in (_dotted(base) for base in node.bases) if b),
        )
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.methods[stmt.name] = stmt.lineno
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                info.attrs.add(stmt.target.id)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        info.attrs.add(target.id)
                        if target.id == "__slots__":
                            info.attrs.update(_slot_names(stmt.value))
        self.classes.append(info)
        for name, lineno in info.methods.items():
            self.defined_attrs.setdefault(name, lineno)
        for name in info.attrs:
            self.defined_attrs.setdefault(name, node.lineno)


def _slot_names(node: ast.expr) -> set[str]:
    names: set[str] = set()
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        for elt in node.elts:
            if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                names.add(elt.value)
    elif isinstance(node, ast.Constant) and isinstance(node.value, str):
        names.add(node.value)
    return names


class RepoIndex:
    """Every indexed module plus the cross-module lookup tables."""

    def __init__(self, modules: list[ModuleIndex]):
        self.modules = modules
        self.defined_attrs: dict[str, tuple[str, int]] = {}
        self.classes_by_name: dict[str, list[ClassInfo]] = {}
        for module in modules:
            for name, lineno in module.defined_attrs.items():
                self.defined_attrs.setdefault(name, (module.relpath, lineno))
            for info in module.classes:
                self.classes_by_name.setdefault(info.name, []).append(info)

    @classmethod
    def build(cls, root: Path, paths: tuple[str, ...]) -> "RepoIndex":
        modules: list[ModuleIndex] = []
        seen: set[Path] = set()
        for entry in paths:
            target = (root / entry).resolve()
            files = (
                sorted(target.rglob("*.py")) if target.is_dir()
                else [target] if target.suffix == ".py" and target.exists()
                else []
            )
            for path in files:
                if path in seen:
                    continue
                seen.add(path)
                try:
                    relpath = path.relative_to(root.resolve()).as_posix()
                except ValueError:
                    relpath = path.as_posix()
                module = ModuleIndex.from_file(path, relpath)
                if module is not None:
                    modules.append(module)
        return cls(modules)

    # ------------------------------------------------------------------
    # static MRO walk (repo-local classes only)
    # ------------------------------------------------------------------
    def ancestors(self, info: ClassInfo) -> Iterator[ClassInfo]:
        """Transitive repo-local base classes, BFS, cycle-safe."""
        queue = list(info.bases)
        seen: set[str] = {info.name}
        while queue:
            base = queue.pop(0).rsplit(".", 1)[-1]
            if base in seen:
                continue
            seen.add(base)
            for candidate in self.classes_by_name.get(base, ()):
                yield candidate
                queue.extend(candidate.bases)

    def ancestor_defining(self, info: ClassInfo, name: str) -> ClassInfo | None:
        for ancestor in self.ancestors(info):
            if ancestor.defines(name):
                return ancestor
        return None
