"""Spatial substrate: locations, regions, grids, trajectories, coverage."""

from .coverage import AreaCoverage, CoverageFunction, TrajectoryCoverage, WeightedCoverage
from .geometry import Location, as_xy, centroid, euclidean, manhattan, nearest, pairwise_distances
from .grid import Grid, GridIndex
from .index import UniformGridIndex
from .raster import WorldRaster, get_raster
from .region import Region
from .trajectory import Trajectory

__all__ = [
    "WorldRaster",
    "get_raster",
    "Location",
    "as_xy",
    "Region",
    "Grid",
    "GridIndex",
    "UniformGridIndex",
    "Trajectory",
    "AreaCoverage",
    "WeightedCoverage",
    "TrajectoryCoverage",
    "CoverageFunction",
    "euclidean",
    "manhattan",
    "pairwise_distances",
    "nearest",
    "centroid",
]
