"""Array-backed fleet state and the batch announcement API.

Historically every slot walked a list of :class:`~repro.sensors.sensor.Sensor`
objects: ``SensorFleet.announcements()`` tested region membership and
exhaustion per sensor, built one frozen
:class:`~repro.sensors.sensor.SensorSnapshot` per usable sensor, and
``ValuationKernel.from_sensors`` re-stacked those snapshots one at a time.
After the kernel/allocator vectorizations (PR 2/3) that per-sensor Python
loop was the last hot-path loop left — the *cold* slot at 2×10^4 sensors was
bottlenecked before any allocator ran, and 10^5-sensor fleets (the scale
city deployments operate at) were out of reach.

This module replaces the object walk with structure-of-arrays state:

:class:`FleetState`
    One stacked array per sensor attribute — positions, inaccuracy
    ``gamma``, trust ``tau``, lifetime/readings counters, the eq.-8 price
    parameters (base price ``C_s``, linear-energy ``beta``, privacy
    sensitivity and window) and a circular report-history buffer for the
    eq.-14 privacy loss.  All slot accounting (``record``, exhaustion,
    announcement masks, costs) is vectorized numpy; results are
    **bit-identical** to the scalar :class:`~repro.sensors.sensor.Sensor`
    arithmetic (same operation order per element, and every privacy-loss
    accumulation is exact small-integer float arithmetic, so summation
    order cannot matter).

:class:`AnnouncementBatch`
    One slot's announcements as array slices (ids, coordinates, eq.-8
    costs, ``gamma``, ``tau``) plus an O(1) identity token derived from the
    state's version stamps.  The batch is also a lazy
    ``Sequence[SensorSnapshot]`` — legacy consumers that index or iterate
    get per-row snapshot objects materialized (and cached) on demand, so
    the object API keeps working while the engine/kernel path never builds
    a single snapshot.

Version stamps: the state bumps ``positions_version`` only when a position
refresh actually changes coordinates and ``exhaustion_version`` only when a
recording newly exhausts a sensor.  A batch token is
``(uid, positions_version, exhaustion_version)`` — equal tokens therefore
guarantee identical announcement *identity* (ids, positions, gamma, trust;
announced costs are deliberately excluded, matching
:func:`~repro.core.valuation.announcement_token`'s contract), which is what
lets a :class:`~repro.core.valuation.ValuationKernel` answer its reuse
check in O(1) instead of comparing per-sensor tuples.
"""

from __future__ import annotations

import itertools
from collections.abc import Sequence
from typing import Iterator

import numpy as np

from ..spatial import Location, Region
from .costs import PrivacySensitivity
from .sensor import SensorSnapshot

__all__ = [
    "FleetState",
    "SlotDelta",
    "AnnouncementBatch",
    "SnapshotColumnView",
    "as_announcement_sequence",
]

#: Distinguishes fleets (and therefore batch tokens) within one process.
_state_uid = itertools.count()


def as_announcement_sequence(sensors):
    """Canonical indexable form of an announcement input.

    Lists, tuples, batch-protocol producers (``kernel_arrays``/``token``,
    i.e. :class:`AnnouncementBatch`) and :class:`SnapshotColumnView` column
    gathers pass through untouched — copying any of them would materialize
    every lazy snapshot; any other iterable is copied to a list.  The
    single predicate all consumers (kernels, allocators, rosters) share,
    so the batch duck-type cannot drift.
    """
    if isinstance(sensors, (list, tuple, SnapshotColumnView)) or getattr(
        sensors, "kernel_arrays", None
    ) is not None:
        return sensors
    return list(sensors)


class SlotDelta:
    """What changed between two consecutive announcements of one fleet.

    Produced by :meth:`FleetState.announce_update` next to the new
    :class:`AnnouncementBatch`.  Consumers patch announcement-derived
    structures (kernel arrays, shard index, world raster) instead of
    rebuilding them; every index array is expressed in *both* coordinate
    systems a consumer might live in:

    fleet-row space (``moved`` / ``crossed`` / ``exhausted`` / ``repriced``)
        The dirty sets over ``FleetState`` rows, regardless of whether the
        rows announced.  ``crossed`` is filled in by the spatial layer
        (grid-cell crossings are a property of the index, not the fleet);
        it is always a subset of ``moved``.

    batch-column space (``kept_src`` / ``fresh_cols`` / ``stale_cols``)
        ``kept_src[j]`` is the previous batch's column that new column
        ``j`` re-uses, or ``-1`` if the sensor newly announced.
        ``fresh_cols`` are the new-batch columns whose *geometry* cannot
        be spliced from the previous structures (new announcers plus
        moved survivors); ``stale_cols`` are the previous-batch columns
        that disappeared or moved.  ``membership_changed`` is False only
        when the two batches announce exactly the same rows in the same
        order.

    The delta never aliases mutable fleet buffers: all arrays are freshly
    computed per announcement and safe to hold across slots.
    """

    __slots__ = (
        "prev_token",
        "token",
        "moved",
        "crossed",
        "exhausted",
        "repriced",
        "kept_src",
        "fresh_cols",
        "stale_cols",
        "membership_changed",
    )

    def __init__(
        self,
        prev_token: tuple,
        token: tuple,
        moved: np.ndarray,
        exhausted: np.ndarray,
        repriced: np.ndarray,
        kept_src: np.ndarray,
        fresh_cols: np.ndarray,
        stale_cols: np.ndarray,
        membership_changed: bool,
    ) -> None:
        self.prev_token = prev_token
        self.token = token
        self.moved = moved
        self.crossed: np.ndarray | None = None
        self.exhausted = exhausted
        self.repriced = repriced
        self.kept_src = kept_src
        self.fresh_cols = fresh_cols
        self.stale_cols = stale_cols
        self.membership_changed = membership_changed

    @property
    def churn_fraction(self) -> float:
        """Dirty announced columns over announced columns (0 when empty)."""
        n = len(self.kept_src)
        if n == 0:
            return 0.0
        return len(self.fresh_cols) / n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SlotDelta moved={len(self.moved)} exhausted={len(self.exhausted)} "
            f"repriced={len(self.repriced)} fresh={len(self.fresh_cols)}/"
            f"{len(self.kept_src)}>"
        )


class SnapshotColumnView(Sequence):
    """A lazy column gather over an announcement sequence.

    ``view[j] is source[columns[j]]`` — nothing is materialized until a
    consumer actually indexes, so a roster built over a candidate subset of
    an :class:`AnnouncementBatch` stays snapshot-free end to end (the
    allocator's pick loop touches only the winning columns).  The view is
    frozen: it holds the source and the column index array by reference
    and never copies either.
    """

    __slots__ = ("_source", "_columns")

    def __init__(self, source, columns: np.ndarray) -> None:
        self._source = source
        self._columns = columns

    def __len__(self) -> int:
        return len(self._columns)

    def __getitem__(self, item):
        if isinstance(item, slice):
            return [self._source[int(j)] for j in self._columns[item]]
        return self._source[int(self._columns[item])]

    def __iter__(self) -> Iterator[SensorSnapshot]:
        for j in self._columns:
            yield self._source[int(j)]


class FleetState:
    """Structure-of-arrays state of a sensor population.

    Args:
        gamma: per-sensor inaccuracy ``gamma_s`` in [0, 1].
        trust: per-sensor trust ``tau_s`` in [0, 1].
        base_price: per-sensor base price ``C_s`` (both eq.-8 components
            scale with it, as in :class:`~repro.sensors.fleet.FleetConfig`).
        energy_beta: per-sensor linear-energy increment factor ``beta``
            (ignored unless ``linear_energy``).
        linear_energy: use the linear energy model
            ``c_e = C_s (1 + beta (1 - E))``; otherwise the fixed model
            ``c_e = C_s``.
        sensitivity: per-sensor privacy sensitivity level values (the
            :class:`~repro.sensors.costs.PrivacySensitivity` enum values).
        privacy_window: the eq.-14 window ``w`` (uniform for the fleet).
        lifetime: per-sensor maximum readings (Section 4.1's rule).

    Mutable state is ``readings_taken``, the windowed report-history
    buffer, and the current positions (:meth:`set_positions`).  All reads
    needed by the slot protocol are exposed as vectorized batch operations;
    :meth:`history_of` reconstructs one sensor's report history for the
    object-view compatibility layer.
    """

    def __init__(
        self,
        gamma: np.ndarray,
        trust: np.ndarray,
        base_price: np.ndarray,
        energy_beta: np.ndarray,
        linear_energy: bool,
        sensitivity: np.ndarray,
        privacy_window: int,
        lifetime: np.ndarray,
    ) -> None:
        self.gamma = np.ascontiguousarray(gamma, dtype=float)
        n = len(self.gamma)
        self.trust = np.ascontiguousarray(trust, dtype=float)
        self.base_price = np.ascontiguousarray(base_price, dtype=float)
        self.energy_beta = np.ascontiguousarray(energy_beta, dtype=float)
        self.linear_energy = bool(linear_energy)
        self.sensitivity = np.ascontiguousarray(sensitivity, dtype=float)
        self.lifetime = np.ascontiguousarray(lifetime, dtype=np.int64)
        for name in ("trust", "base_price", "energy_beta", "sensitivity", "lifetime"):
            if len(getattr(self, name)) != n:
                raise ValueError(f"{name} must have one entry per sensor")
        if np.any((self.gamma < 0.0) | (self.gamma > 1.0)):
            raise ValueError("inaccuracy must be in [0, 1]")
        if np.any((self.trust < 0.0) | (self.trust > 1.0)):
            raise ValueError("trust must be in [0, 1]")
        if np.any(self.base_price < 0.0):
            raise ValueError("base_price must be non-negative")
        if np.any(self.energy_beta < 0.0):
            raise ValueError("beta must be non-negative")
        if np.any(self.lifetime < 1):
            raise ValueError("lifetime must be >= 1")
        if privacy_window < 1:
            raise ValueError("privacy window must be >= 1")
        self.privacy_window = int(privacy_window)
        self.readings_taken = np.zeros(n, dtype=np.int64)
        # Circular report-history buffer: column ``t % (w + 1)`` holds
        # whether a report was provided at slot ``t``; :meth:`clear_slot`
        # retires the column a new slot is about to reuse (its old content
        # is ``w + 1`` slots stale — outside the eq.-14 window).  Float
        # dtype so the privacy pass is a single matvec.
        self._report_flags = np.zeros((n, self.privacy_window + 1))
        self._any_privacy = bool(np.any(self.sensitivity > 0.0))
        self.xy: np.ndarray | None = None
        self.positions_version = 0
        self.exhaustion_version = 0
        self._uid = next(_state_uid)
        # Dirty accumulators for the differential announce path: fleet rows
        # that moved / were recorded / newly exhausted since the last
        # :meth:`announce_update` consumed them.  Plain :meth:`announce`
        # never reads or resets these, so mixing both APIs stays correct —
        # the sets simply keep accumulating relative to ``_last_batch``.
        self._dirty_moved = np.zeros(n, dtype=bool)
        self._dirty_recorded = np.zeros(n, dtype=bool)
        self._dirty_exhausted = np.zeros(n, dtype=bool)
        self._last_batch: AnnouncementBatch | None = None
        self._last_flagged: np.ndarray | None = None

    # ------------------------------------------------------------------
    # shape / identity
    # ------------------------------------------------------------------
    @property
    def n_sensors(self) -> int:
        return len(self.gamma)

    @property
    def stamp(self) -> tuple:
        """O(1) identity token of the current announcement *identity*.

        Stable across cost-only changes (readings that do not exhaust,
        privacy-history aging); bumped whenever positions actually move or
        a sensor newly exhausts — exactly the attributes
        :func:`~repro.core.valuation.announcement_token` covers.
        """
        return ("fleet-state", self._uid, self.positions_version, self.exhaustion_version)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def set_positions(self, xy: np.ndarray) -> None:
        """Refresh the per-sensor positions (copied; ``(n, 2)``).

        The positions version is bumped only when coordinates actually
        changed, so stationary fleets (and replayed traces holding their
        final frame) keep their kernel-reuse token across slots.
        """
        xy = np.array(xy, dtype=float, copy=True)
        if xy.shape != (self.n_sensors, 2):
            raise ValueError(
                f"positions must have shape ({self.n_sensors}, 2), got {xy.shape}"
            )
        if self.xy is None:
            self.xy = xy
            self.positions_version += 1
            self._dirty_moved[:] = True
            return
        changed = (self.xy != xy).any(axis=1)
        if changed.any():
            self.xy = xy
            self.positions_version += 1
            self._dirty_moved |= changed

    def clear_slot(self, now: int) -> None:
        """Retire the report-buffer column slot ``now`` is about to reuse."""
        self._report_flags[:, now % (self.privacy_window + 1)] = 0.0

    def record(self, ids: np.ndarray, now: int) -> None:
        """Book one reading per sensor in ``ids`` (validated, unique) at
        slot ``now``: lifetime counter plus privacy report history."""
        self.readings_taken[ids] += 1
        self._report_flags[ids, now % (self.privacy_window + 1)] = 1.0
        self._dirty_recorded[ids] = True
        spent = self.readings_taken[ids] >= self.lifetime[ids]
        if np.any(spent):
            self.exhaustion_version += 1
            self._dirty_exhausted[np.asarray(ids)[spent]] = True

    # ------------------------------------------------------------------
    # vectorized eq. 8 pricing
    # ------------------------------------------------------------------
    def remaining_energy(self, idx: np.ndarray) -> np.ndarray:
        """``E_s = max(0, 1 - readings/lifetime)`` for the given rows."""
        return np.maximum(0.0, 1.0 - self.readings_taken[idx] / self.lifetime[idx])

    def announce_costs(self, idx: np.ndarray, now: int) -> np.ndarray:
        """Eq.-8 announced prices for the given rows at slot ``now``.

        Bit-identical to :meth:`repro.sensors.sensor.Sensor.announce_cost`:
        each element goes through the same operation sequence as the scalar
        models, and the privacy-loss accumulation is exact (small-integer
        floats), so the windowed sum cannot depend on summation order.
        """
        energy = self.remaining_energy(idx)
        if self.linear_energy:
            costs = self.base_price[idx] * (1.0 + self.energy_beta[idx] * (1.0 - energy))
        else:
            costs = self.base_price[idx].copy()
        if self._any_privacy:
            w = self.privacy_window
            # weight (w - age) per buffer column, exactly privacy_loss():
            # reports older than w columns have weight exactly 0, and the
            # age-0 weight w covers a same-slot report (announce after
            # record) the same way the scalar history walk does — in the
            # normal protocol that column is simply still cleared.
            ages = (now - np.arange(w + 1)) % (w + 1)
            weights = (w - ages).astype(float)
            extra = self._report_flags[idx] @ weights
            loss = (float(w) + extra) / (w * (w + 1) / 2.0)
            costs = costs + self.sensitivity[idx] * loss * self.base_price[idx]
        return costs

    # ------------------------------------------------------------------
    # the announcement batch
    # ------------------------------------------------------------------
    def announce(self, now: int, working_region: Region) -> "AnnouncementBatch":
        """The slot's announcements: in-region, non-exhausted, priced.

        One vectorized pass; no snapshot objects are built (the returned
        batch materializes them lazily if a legacy consumer asks).
        """
        if self.xy is None:
            raise RuntimeError("positions were never set; call set_positions first")
        x, y = self.xy[:, 0], self.xy[:, 1]
        usable = (
            (x >= working_region.x_min)
            & (x <= working_region.x_max)
            & (y >= working_region.y_min)
            & (y <= working_region.y_max)
            & (self.readings_taken < self.lifetime)
        )
        idx = np.flatnonzero(usable)
        return AnnouncementBatch(
            ids=idx,
            xy=self.xy[idx],
            costs=self.announce_costs(idx, now),
            gamma=self.gamma[idx],
            trust=self.trust[idx],
            # The announced *region* co-determines which rows announce, so
            # it is part of the identity token: equal tokens must guarantee
            # identical announcement sets even across ad-hoc announce()
            # calls with different working regions (Region is a frozen,
            # cheaply comparable dataclass).
            token=self.stamp + (working_region,),
            clock=now,
        )

    def announce_update(
        self, now: int, working_region: Region
    ) -> tuple["AnnouncementBatch", "SlotDelta | None"]:
        """Differential :meth:`announce`: the new batch plus what changed.

        Produces a batch **bit-identical** to ``announce(now,
        working_region)`` — survivors' identity columns are gathered from
        the same state arrays, and costs are spliced (copied for rows whose
        eq.-8 inputs did not change, recomputed for the dirty subset; the
        subset recompute is exact because every cost term is elementwise or
        an exact small-integer accumulation, so it cannot depend on which
        rows ride along).  New arrays are always built; the previous batch
        is never mutated, so kernels/rasters holding its arrays stay valid.

        Returns ``(batch, None)`` when no baseline exists (first call, or
        a different working region) — the consumer must full-rebuild.
        """
        prev = self._last_batch
        if prev is None or prev.token[-1] != working_region:
            batch = self.announce(now, working_region)
            self._rebase(batch)
            return batch, None

        moved = np.flatnonzero(self._dirty_moved)
        exhausted = np.flatnonzero(self._dirty_exhausted)
        # Rows whose announced cost may differ from the previous batch:
        # fixed energy + zero privacy -> constant; linear energy -> only
        # recorded rows; privacy -> any row with a windowed report now or
        # at the previous announce (the eq.-14 weights permute with the
        # clock, so every flagged row's extra term changes slot to slot).
        if self._any_privacy:
            flagged = self._report_flags.any(axis=1)
            repriced_mask = self._dirty_recorded | flagged
            if self._last_flagged is not None:
                repriced_mask |= self._last_flagged
        else:
            flagged = None
            repriced_mask = (
                self._dirty_recorded
                if self.linear_energy
                else np.zeros(self.n_sensors, dtype=bool)
            )
        repriced = np.flatnonzero(repriced_mask)

        assert self.xy is not None
        x, y = self.xy[:, 0], self.xy[:, 1]
        usable = (
            (x >= working_region.x_min)
            & (x <= working_region.x_max)
            & (y >= working_region.y_min)
            & (y <= working_region.y_max)
            & (self.readings_taken < self.lifetime)
        )
        idx = np.flatnonzero(usable)
        m = len(idx)

        # Column maps between the two batches (both id arrays ascending).
        # Stable membership — the overwhelmingly common warm slot — needs
        # no bisection at all: every column keeps its position.
        if m == len(prev.ids) and bool(np.array_equal(idx, prev.ids)):
            kept = np.ones(m, dtype=bool)
            kept_src = np.arange(m, dtype=np.intp)
            moved_here = self._dirty_moved[idx]
            fresh_cols = np.flatnonzero(moved_here)
            stale_cols = fresh_cols
            membership_changed = False
        else:
            pos = np.searchsorted(prev.ids, idx)
            pos_c = np.minimum(pos, max(len(prev.ids) - 1, 0))
            kept = (
                (pos < len(prev.ids)) & (prev.ids[pos_c] == idx)
                if len(prev.ids)
                else np.zeros(m, dtype=bool)
            )
            kept_src = np.where(kept, pos_c, -1).astype(np.intp)
            moved_here = self._dirty_moved[idx]
            fresh_cols = np.flatnonzero(~kept | moved_here)
            rpos = np.searchsorted(idx, prev.ids)
            rpos_c = np.minimum(rpos, max(m - 1, 0))
            kept_prev = (
                (rpos < m) & (idx[rpos_c] == prev.ids)
                if m
                else np.zeros(len(prev.ids), dtype=bool)
            )
            stale_cols = np.flatnonzero(~kept_prev | self._dirty_moved[prev.ids])
            membership_changed = not (m == len(prev.ids) and bool(kept.all()))

        costs = np.empty(m)
        need = ~kept | repriced_mask[idx]
        carry = np.flatnonzero(~need)
        costs[carry] = prev.costs[kept_src[carry]]
        dirty = np.flatnonzero(need)
        if dirty.size:
            costs[dirty] = self.announce_costs(idx[dirty], now)

        token = self.stamp + (working_region,)
        batch = AnnouncementBatch(
            ids=idx,
            xy=self.xy[idx],
            costs=costs,
            gamma=self.gamma[idx],
            trust=self.trust[idx],
            token=token,
            clock=now,
        )
        delta = SlotDelta(
            prev_token=prev.token,
            token=token,
            moved=moved,
            exhausted=exhausted,
            repriced=repriced,
            kept_src=kept_src,
            fresh_cols=fresh_cols,
            stale_cols=stale_cols,
            membership_changed=membership_changed,
        )
        self._rebase(batch, flagged)
        return batch, delta

    def _rebase(self, batch: "AnnouncementBatch", flagged: np.ndarray | None = None) -> None:
        """Make ``batch`` the differential baseline; reset dirty sets."""
        self._last_batch = batch
        self._dirty_moved[:] = False
        self._dirty_recorded[:] = False
        self._dirty_exhausted[:] = False
        if self._any_privacy:
            self._last_flagged = (
                flagged if flagged is not None else self._report_flags.any(axis=1)
            )

    # ------------------------------------------------------------------
    # object-view compatibility
    # ------------------------------------------------------------------
    def history_of(self, index: int, now: int) -> list[int]:
        """Reconstruct one sensor's windowed report history (ascending).

        Equivalent to the scalar :class:`Sensor`'s pruned ``report_history``
        for every cost computation: entries older than the window never
        contribute to eq. 14 and have been retired from the buffer.
        """
        w = self.privacy_window
        flags = self._report_flags[index]
        slots = [
            now - int((now - c) % (w + 1))
            for c in range(w + 1)
            if flags[c] != 0.0
        ]
        return sorted(t for t in slots if t >= 0)

    def sensitivity_level(self, index: int) -> PrivacySensitivity:
        """The enum level behind ``sensitivity[index]``."""
        return PrivacySensitivity.from_value(float(self.sensitivity[index]))


class AnnouncementBatch(Sequence):
    """One slot's announcements as stacked arrays + a lazy snapshot view.

    The array attributes (``ids``, ``xy``, ``costs``, ``gamma``, ``trust``)
    share one column order and are consumed directly by
    :meth:`~repro.core.valuation.ValuationKernel.from_batch` without any
    per-sensor work.  The batch is simultaneously an immutable
    ``Sequence[SensorSnapshot]``: indexing or iterating materializes (and
    caches) frozen per-row :class:`SensorSnapshot` objects, so pre-batch
    consumers — allocator fallbacks, monitoring controllers, tests — keep
    working unchanged.

    Attributes:
        ids: announced sensor ids (fleet row indices), strictly ascending.
        xy: ``(m, 2)`` announced coordinates.
        costs: eq.-8 announced prices.
        gamma: per-announcement inaccuracy.
        trust: per-announcement trust.
        token: O(1) identity stamp (see :attr:`FleetState.stamp`); equal
            tokens guarantee identical ids/positions/gamma/trust (announced
            costs excluded, by the kernel-token contract).
        clock: the slot the batch was announced for.
    """

    #: Sensor ids are fleet row indices — unique by construction, which
    #: lets allocator input validation skip its O(n) duplicate scan.
    distinct_sensor_ids = True

    def __init__(
        self,
        ids: np.ndarray,
        xy: np.ndarray,
        costs: np.ndarray,
        gamma: np.ndarray,
        trust: np.ndarray,
        token: tuple,
        clock: int,
    ) -> None:
        self.ids = ids
        self.xy = xy
        self.costs = costs
        self.gamma = gamma
        self.trust = trust
        self.token = token
        self.clock = clock
        self._snapshots: list[SensorSnapshot | None] = [None] * len(ids)

    def kernel_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The ``(xy, gamma, trust, costs)`` arrays a kernel stacks —
        shared, not copied (the batch never mutates them)."""
        return self.xy, self.gamma, self.trust, self.costs

    def with_costs(self, costs: np.ndarray) -> "AnnouncementBatch":
        """The same announcement identity at different prices.

        Shares every identity array *and the token* (the kernel-token
        contract excludes announced costs, so reuse checks keep answering
        in O(1)); only the cost column — and therefore the lazily
        materialized snapshots — differs.  This is how the sequential
        buffering baseline re-announces stage-1 sensors at zero cost
        without walking the batch.
        """
        costs = np.asarray(costs, dtype=float)
        if costs.shape != self.costs.shape:
            raise ValueError("costs must have one entry per announcement")
        return AnnouncementBatch(
            ids=self.ids,
            xy=self.xy,
            costs=costs,
            gamma=self.gamma,
            trust=self.trust,
            token=self.token,
            clock=self.clock,
        )

    @property
    def sensor_ids(self) -> np.ndarray:
        return self.ids

    # ------------------------------------------------------------------
    # Sequence[SensorSnapshot] protocol (lazy)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.ids)

    def snapshot(self, j: int) -> SensorSnapshot:
        """The (cached) frozen snapshot of row ``j``."""
        snap = self._snapshots[j]
        if snap is None:
            snap = SensorSnapshot(
                sensor_id=int(self.ids[j]),
                location=Location(float(self.xy[j, 0]), float(self.xy[j, 1])),
                cost=float(self.costs[j]),
                inaccuracy=float(self.gamma[j]),
                trust=float(self.trust[j]),
            )
            self._snapshots[j] = snap
        return snap

    def __getitem__(self, item):
        if isinstance(item, slice):
            return [self.snapshot(j) for j in range(*item.indices(len(self)))]
        j = item.__index__()
        if j < 0:
            j += len(self)
        if not (0 <= j < len(self)):
            raise IndexError("announcement index out of range")
        return self.snapshot(j)

    def __iter__(self) -> Iterator[SensorSnapshot]:
        for j in range(len(self)):
            yield self.snapshot(j)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<AnnouncementBatch slot={self.clock} n={len(self)} "
            f"token={self.token!r}>"
        )
