"""Figure 10: the query mix — Algorithm 5 vs the sequential baseline.

The paper's findings: Algorithm 5 "significantly outperforms the baseline";
the baseline's per-type quality is zero or tiny at small budget factors
while Algorithm 5 keeps satisfying queries through sensor sharing.
"""

from __future__ import annotations

from conftest import run_once
from repro.experiments import fig10, format_figure


def test_fig10_query_mix(benchmark, scale):
    result = run_once(benchmark, fig10, scale)
    print()
    print(format_figure(result))

    assert result.dominates("Alg5", "Baseline", "avg_utility", slack=1e-9)
    # The headline gap is largest at the smallest budget factor.
    alg5 = result.metric("Alg5", "avg_utility")
    baseline = result.metric("Baseline", "avg_utility")
    assert alg5[0] >= 2.0 * max(baseline[0], 1e-9) or baseline[0] <= 1.0
    # Monitoring quality: the opportunistic controller beats rigid
    # desired-times-only sampling at every budget factor.
    assert result.dominates(
        "Alg5", "Baseline", "quality_location_monitoring", slack=1e-9
    )
