"""Tests for the workload generators (Section 4 setups)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.phenomena import (
    GaussianProcessField,
    HarmonicRegressionModel,
    OzoneTraceSynthesizer,
    RBFKernel,
)
from repro.queries import (
    AggregateQueryWorkload,
    LocationMonitoringWorkload,
    PointQueryWorkload,
    RegionMonitoringWorkload,
)
from repro.spatial import Region

REGION = Region.from_origin(50, 50)
SERIES = OzoneTraceSynthesizer().generate(50, np.random.default_rng(0))
MODEL = HarmonicRegressionModel(50, 1)


class TestPointWorkload:
    def test_count_and_placement(self):
        wl = PointQueryWorkload(REGION, n_queries=25, budget=15.0)
        queries = wl.generate(0, np.random.default_rng(0))
        assert len(queries) == 25
        assert all(REGION.contains(q.location) for q in queries)
        assert all(q.budget == 15.0 for q in queries)

    def test_budget_spread(self):
        wl = PointQueryWorkload(REGION, n_queries=200, budget=15.0, budget_spread=10.0)
        queries = wl.generate(0, np.random.default_rng(0))
        budgets = [q.budget for q in queries]
        assert min(budgets) >= 5.0 and max(budgets) <= 25.0
        assert np.std(budgets) > 1.0

    def test_deterministic_given_rng(self):
        wl = PointQueryWorkload(REGION, n_queries=5)
        a = wl.generate(0, np.random.default_rng(3))
        b = wl.generate(0, np.random.default_rng(3))
        assert [q.location for q in a] == [q.location for q in b]

    def test_validation(self):
        with pytest.raises(ValueError):
            PointQueryWorkload(REGION, n_queries=-1)
        with pytest.raises(ValueError):
            PointQueryWorkload(REGION, budget_spread=-1.0)


class TestAggregateWorkload:
    def test_budget_formula(self):
        wl = AggregateQueryWorkload(REGION, budget_factor=7.0, sensing_range=10.0)
        queries = wl.generate(0, np.random.default_rng(0))
        for q in queries:
            assert q.budget == pytest.approx(q.region.area / 15.0 * 7.0)

    def test_count_spread(self):
        wl = AggregateQueryWorkload(REGION, mean_queries=10, count_spread=5)
        counts = [
            len(wl.generate(0, np.random.default_rng(seed))) for seed in range(30)
        ]
        assert min(counts) >= 5 and max(counts) <= 15

    def test_regions_inside(self):
        wl = AggregateQueryWorkload(REGION)
        for q in wl.generate(0, np.random.default_rng(1)):
            assert REGION.contains_region(q.region)
            assert wl.min_side <= q.region.width <= wl.max_side

    def test_validation(self):
        with pytest.raises(ValueError):
            AggregateQueryWorkload(REGION, mean_queries=0)
        with pytest.raises(ValueError):
            AggregateQueryWorkload(REGION, mean_queries=5, count_spread=9)
        with pytest.raises(ValueError):
            AggregateQueryWorkload(REGION, min_side=10, max_side=5)


class TestLocationMonitoringWorkload:
    def _wl(self, **kwargs):
        return LocationMonitoringWorkload(REGION, SERIES, MODEL, **kwargs)

    def test_respects_max_live(self):
        wl = self._wl(max_live=10, arrivals_per_slot=8)
        assert len(wl.generate(0, np.random.default_rng(0), live_count=7)) == 3
        assert len(wl.generate(0, np.random.default_rng(0), live_count=10)) == 0

    def test_duration_and_budget(self):
        wl = self._wl(budget_factor=9.0, duration_range=(5, 20))
        for q in wl.generate(3, np.random.default_rng(0)):
            assert 5 <= q.duration <= 20
            assert q.budget == pytest.approx(q.duration * 9.0)
            assert q.t1 == 3

    def test_desired_times_are_one_third_of_duration(self):
        wl = self._wl()
        for q in wl.generate(0, np.random.default_rng(1)):
            expected = max(1, round(q.duration / 3))
            assert len(q.desired_times) <= expected  # dedup may shrink
            assert all(q.t1 <= t <= q.t2 for t in q.desired_times)

    def test_validation(self):
        with pytest.raises(ValueError):
            self._wl(duration_range=(0, 5))
        with pytest.raises(ValueError):
            self._wl(sampling_fraction=0.0)


class TestRegionMonitoringWorkload:
    GP = GaussianProcessField(RBFKernel(1.0, 2.0), noise=0.2)

    def test_budget_formula(self):
        wl = RegionMonitoringWorkload(REGION, self.GP, budget_factor=10.0, sensing_radius=2.0)
        for q in wl.generate(0, np.random.default_rng(0)):
            expected = q.region.area / (3.0 * math.pi * 4.0) * 10.0
            assert q.budget == pytest.approx(expected)

    def test_one_query_per_slot_default(self):
        wl = RegionMonitoringWorkload(REGION, self.GP)
        assert len(wl.generate(0, np.random.default_rng(0))) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            RegionMonitoringWorkload(REGION, self.GP, duration_range=(5, 2))
        with pytest.raises(ValueError):
            RegionMonitoringWorkload(REGION, self.GP, sensing_radius=0.0)
