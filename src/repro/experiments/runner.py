"""Sweep plumbing shared by every figure reproduction."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["FigureResult", "SeriesCollector"]


@dataclass
class FigureResult:
    """One reproduced figure: an x-sweep of metrics per algorithm.

    ``series[algorithm][metric]`` is a list aligned with ``x_values`` —
    exactly the rows the paper plots.
    """

    figure_id: str
    title: str
    x_label: str
    x_values: list[float] = field(default_factory=list)
    series: dict[str, dict[str, list[float]]] = field(default_factory=dict)
    elapsed_seconds: float = 0.0
    notes: str = ""

    def add(self, algorithm: str, metric: str, value: float) -> None:
        self.series.setdefault(algorithm, {}).setdefault(metric, []).append(
            float(value)
        )

    def metric(self, algorithm: str, metric: str) -> list[float]:
        return self.series[algorithm][metric]

    # ------------------------------------------------------------------
    # shape checks used by benches and EXPERIMENTS.md
    # ------------------------------------------------------------------
    def dominates(
        self,
        winner: str,
        loser: str,
        metric: str,
        slack: float = 0.0,
    ) -> bool:
        """``winner``'s series is >= ``loser``'s at every x (minus slack)."""
        w = self.metric(winner, metric)
        l = self.metric(loser, metric)
        return all(a >= b - slack for a, b in zip(w, l))

    def mean_advantage(self, winner: str, loser: str, metric: str) -> float:
        """Average (winner - loser) across the sweep."""
        w = self.metric(winner, metric)
        l = self.metric(loser, metric)
        return float(sum(a - b for a, b in zip(w, l)) / len(w))


class SeriesCollector:
    """Context helper timing a figure run."""

    def __init__(self, figure: FigureResult) -> None:
        self.figure = figure
        self._start = 0.0

    def __enter__(self) -> FigureResult:
        self._start = time.perf_counter()
        return self.figure

    def __exit__(self, *exc) -> None:
        self.figure.elapsed_seconds = time.perf_counter() - self._start
