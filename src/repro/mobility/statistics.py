"""Trace statistics: the quantities the dataset substitutes must match.

The RNC substitute is credible exactly to the extent that the statistics
the algorithms consume match the paper's published ones.  This module
computes them from any :class:`~repro.mobility.trace.MobilityTrace` — ours
or a user-supplied real one — so substitutes can be validated (and
recalibrated) quantitatively:

* per-slot presence inside a working region (mean / min / max);
* churn: how many sensors enter and leave the region per slot;
* dwell: distribution of consecutive-slot stays inside the region;
* displacement: per-slot movement distances.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..spatial import Region
from .base import MobilityModel
from .trace import MobilityTrace

__all__ = ["TraceStatistics", "compute_statistics", "ChurnStatistics", "compute_churn"]


@dataclass(frozen=True)
class TraceStatistics:
    """Summary of one trace relative to a working region."""

    n_slots: int
    n_sensors: int
    mean_presence: float
    min_presence: int
    max_presence: int
    mean_entries_per_slot: float
    mean_exits_per_slot: float
    mean_dwell: float
    median_step: float
    p90_step: float

    def format(self) -> str:
        return "\n".join(
            [
                f"slots={self.n_slots} sensors={self.n_sensors}",
                (
                    f"presence: mean={self.mean_presence:.1f} "
                    f"min={self.min_presence} max={self.max_presence}"
                ),
                (
                    f"churn/slot: entries={self.mean_entries_per_slot:.1f} "
                    f"exits={self.mean_exits_per_slot:.1f}"
                ),
                f"dwell (slots in region): mean={self.mean_dwell:.1f}",
                f"step length: median={self.median_step:.2f} p90={self.p90_step:.2f}",
            ]
        )


def compute_statistics(trace: MobilityTrace, working_region: Region) -> TraceStatistics:
    """All substitute-validation statistics in one pass over the trace."""
    inside = np.zeros((trace.n_slots, trace.n_sensors), dtype=bool)
    for t, frame in enumerate(trace.frames):
        for i, location in enumerate(frame):
            inside[t, i] = working_region.contains(location)

    presence = inside.sum(axis=1)

    if trace.n_slots > 1:
        entered = (~inside[:-1] & inside[1:]).sum(axis=1)
        exited = (inside[:-1] & ~inside[1:]).sum(axis=1)
        mean_entries = float(entered.mean())
        mean_exits = float(exited.mean())
    else:
        mean_entries = mean_exits = 0.0

    # Dwell: lengths of maximal runs of consecutive in-region slots.
    dwells: list[int] = []
    for i in range(trace.n_sensors):
        run = 0
        for t in range(trace.n_slots):
            if inside[t, i]:
                run += 1
            elif run:
                dwells.append(run)
                run = 0
        if run:
            dwells.append(run)
    mean_dwell = float(np.mean(dwells)) if dwells else 0.0

    # Step lengths between consecutive frames.
    steps: list[float] = []
    for t in range(1, trace.n_slots):
        for a, b in zip(trace.frames[t - 1], trace.frames[t]):
            steps.append(a.distance_to(b))
    if steps:
        median_step = float(np.median(steps))
        p90_step = float(np.percentile(steps, 90))
    else:
        median_step = p90_step = 0.0

    return TraceStatistics(
        n_slots=trace.n_slots,
        n_sensors=trace.n_sensors,
        mean_presence=float(presence.mean()),
        min_presence=int(presence.min()),
        max_presence=int(presence.max()),
        mean_entries_per_slot=mean_entries,
        mean_exits_per_slot=mean_exits,
        mean_dwell=mean_dwell,
        median_step=median_step,
        p90_step=p90_step,
    )


@dataclass(frozen=True)
class ChurnStatistics:
    """Per-slot movement churn of a mobility model or recorded trace.

    The quantities the incremental slot-state path is proportional to:

    * ``moved_fraction[t]`` — fraction of sensors whose coordinates
      changed between slot ``t-1`` and slot ``t`` (slot 0 is 0.0 by
      convention: there is no prior frame);
    * ``crossing_rate[t]`` — fraction whose containing grid cell (side
      ``cell_size``) changed, i.e. the movers that also force spatial-index
      bucket moves and shard-membership updates.

    ``crossing_rate <= moved_fraction`` holds slot by slot: a sensor can
    move within its cell, but cannot cross cells without moving.
    """

    cell_size: float
    moved_fraction: np.ndarray
    crossing_rate: np.ndarray

    @property
    def n_slots(self) -> int:
        return len(self.moved_fraction)

    @property
    def mean_moved_fraction(self) -> float:
        if self.n_slots <= 1:
            return 0.0
        return float(self.moved_fraction[1:].mean())

    @property
    def mean_crossing_rate(self) -> float:
        if self.n_slots <= 1:
            return 0.0
        return float(self.crossing_rate[1:].mean())

    def format(self) -> str:
        return (
            f"churn over {self.n_slots} slots (cell={self.cell_size:g}): "
            f"moved={self.mean_moved_fraction:.4f} "
            f"crossed={self.mean_crossing_rate:.4f}"
        )


def compute_churn(
    model: MobilityModel | MobilityTrace,
    n_slots: int | None = None,
    cell_size: float = 1.0,
) -> ChurnStatistics:
    """Per-slot moved-sensor fraction and cell-crossing rate.

    Works on any :class:`~repro.mobility.base.MobilityModel` (the model is
    advanced ``n_slots - 1`` times) or directly on a recorded
    :class:`~repro.mobility.trace.MobilityTrace` (``n_slots`` defaults to
    the trace length).  The replay harness reports these next to per-slot
    latencies so speedups can be read against the churn that produced them.
    """
    if cell_size <= 0:
        raise ValueError("cell_size must be positive")
    if isinstance(model, MobilityTrace):
        trace = model
        frames = [trace.frame_xy(t) for t in range(trace.n_slots)]
        if n_slots is not None:
            if n_slots > len(frames):
                raise ValueError(
                    f"trace has {len(frames)} slots, asked for {n_slots}"
                )
            frames = frames[:n_slots]
    else:
        if n_slots is None:
            raise ValueError("n_slots is required for a live MobilityModel")
        frames = model.run_xy(n_slots)
    if not frames:
        raise ValueError("need at least one slot")

    n = len(frames[0])
    moved = np.zeros(len(frames))
    crossed = np.zeros(len(frames))
    prev = frames[0]
    prev_cells = np.floor(prev / cell_size).astype(np.int64)
    for t in range(1, len(frames)):
        cur = frames[t]
        cells = np.floor(cur / cell_size).astype(np.int64)
        moved[t] = (cur != prev).any(axis=1).sum() / n
        crossed[t] = (cells != prev_cells).any(axis=1).sum() / n
        prev, prev_cells = cur, cells

    moved.setflags(write=False)
    crossed.setflags(write=False)
    return ChurnStatistics(
        cell_size=float(cell_size), moved_fraction=moved, crossing_rate=crossed
    )
