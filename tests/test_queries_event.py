"""Tests for the event-detection extension."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import make_snapshot
from repro.queries import (
    EventDetectionQuery,
    EventDetectionWorkload,
    QueryType,
    detection_confidence,
)
from repro.spatial import Location, Region


class TestDetectionConfidence:
    def test_empty_is_zero(self):
        assert detection_confidence([]) == 0.0

    def test_single_witness(self):
        assert detection_confidence([0.7]) == pytest.approx(0.7)

    def test_redundancy_compounds(self):
        assert detection_confidence([0.5, 0.5]) == pytest.approx(0.75)

    def test_perfect_witness_saturates(self):
        assert detection_confidence([1.0, 0.2]) == pytest.approx(1.0)

    def test_invalid_quality(self):
        with pytest.raises(ValueError):
            detection_confidence([1.5])

    @given(st.lists(st.floats(0, 1), max_size=6), st.floats(0, 1))
    def test_monotone(self, base, extra):
        assert detection_confidence(base + [extra]) >= detection_confidence(base) - 1e-12

    @given(
        st.lists(st.floats(0, 1), max_size=4),
        st.lists(st.floats(0, 1), max_size=4),
        st.floats(0, 1),
    )
    @settings(max_examples=50)
    def test_submodular(self, small, more, extra):
        gain_small = detection_confidence(small + [extra]) - detection_confidence(small)
        gain_big = detection_confidence(small + more + [extra]) - detection_confidence(
            small + more
        )
        assert gain_big <= gain_small + 1e-9


class TestEventDetectionQuery:
    def _query(self, confidence=0.9, threshold=50.0, duration=10) -> EventDetectionQuery:
        return EventDetectionQuery(
            Location(5, 5), 0, duration - 1, threshold=threshold,
            confidence=confidence, budget=duration * 10.0, dmax=5.0, theta_min=0.0,
        )

    def test_slot_budget_spreads_budget(self):
        q = self._query(duration=10)
        assert q.slot_budget() == pytest.approx(10.0)

    def test_slot_query_valuation_saturates_at_confidence(self):
        q = self._query(confidence=0.5)
        slot = q.create_slot_query(0)
        assert slot.query_type is QueryType.EVENT
        one = [make_snapshot(0, x=5, y=5)]  # quality 1 -> confidence 1 >= 0.5
        assert slot.value(one) == pytest.approx(slot.budget)

    def test_slot_query_partial_confidence(self):
        q = self._query(confidence=0.9)
        slot = q.create_slot_query(0)
        weak = [make_snapshot(0, x=7.5, y=5)]  # quality 0.5
        assert slot.value(weak) == pytest.approx(slot.budget * 0.5 / 0.9)

    def test_inactive_slot_rejected(self):
        q = self._query(duration=5)
        with pytest.raises(ValueError):
            q.create_slot_query(99)

    def test_apply_readings_triggers_event(self):
        q = self._query(confidence=0.6, threshold=50.0)
        fired = q.apply_readings(0, [(60.0, 0.9)], payment=5.0)
        assert fired
        assert q.detections[0][0] == 0
        assert q.spent == 5.0

    def test_apply_readings_below_threshold(self):
        q = self._query(confidence=0.6, threshold=50.0)
        assert not q.apply_readings(0, [(40.0, 0.9)], payment=0.0)

    def test_apply_readings_insufficient_confidence(self):
        q = self._query(confidence=0.95, threshold=50.0)
        assert not q.apply_readings(0, [(60.0, 0.5)], payment=0.0)

    def test_apply_readings_empty(self):
        q = self._query()
        assert not q.apply_readings(0, [], payment=0.0)

    def test_invalid_confidence(self):
        with pytest.raises(ValueError):
            EventDetectionQuery(Location(0, 0), 0, 5, 10.0, confidence=0.0, budget=10.0)


class TestEventWorkload:
    def test_generates_active_queries(self):
        workload = EventDetectionWorkload(
            Region.from_origin(20, 20), threshold=40.0, arrivals_per_slot=3
        )
        queries = workload.generate(5, np.random.default_rng(0))
        assert len(queries) == 3
        assert all(q.active(5) for q in queries)
        assert all(q.threshold == 40.0 for q in queries)
