"""Workload generators reproducing the paper's experimental query streams.

Every generator owns the parameters of one experiment family (Section 4) and
emits fresh query objects per time slot:

* :class:`PointQueryWorkload` — Section 4.3: a fixed number of point queries
  per slot at uniform locations; fixed or uniformly-distributed budgets.
* :class:`AggregateQueryWorkload` — Section 4.4: a random number of
  aggregate queries (uniform, mean 30) over random rectangles, with the
  area-proportional budget ``A(r)/(1.5 r_s) * b``.
* :class:`LocationMonitoringWorkload` — Section 4.5: keeps up to 100 live
  queries, duration ~ U[5, 20], one third of the duration as desired
  sampling times (chosen by the OptiMoS-substitute), budget ``duration * b``.
* :class:`RegionMonitoringWorkload` — Section 4.6: one query per slot over a
  random rectangle of the Intel-substitute field, duration ~ U[5, 20],
  budget ``A(r)/(3 pi r_s^2) * b``.
* :class:`EventDetectionWorkload` — the event extension (not in the paper's
  evaluation, flagged in DESIGN.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..phenomena import (
    GaussianProcessField,
    HarmonicRegressionModel,
    schedule_for_window,
)
from ..spatial import Region
from ..spatial import Trajectory
from .aggregate import SpatialAggregateQuery, TrajectoryQuery
from .event import EventDetectionQuery
from .monitoring import LocationMonitoringQuery, RegionMonitoringQuery
from .point import PointQuery

__all__ = [
    "PointQueryWorkload",
    "AggregateQueryWorkload",
    "TrajectoryQueryWorkload",
    "LocationMonitoringWorkload",
    "RegionMonitoringWorkload",
    "EventDetectionWorkload",
]


@dataclass
class PointQueryWorkload:
    """Point queries per Section 4.3.

    ``budget_spread`` = 0 reproduces the fixed-budget experiments; the
    paper's Figure 4 uses ``spread = 10`` ("budget chosen uniformly at
    random in mean +- 10").
    """

    region: Region
    n_queries: int = 300
    budget: float = 15.0
    budget_spread: float = 0.0
    theta_min: float = 0.2
    dmax: float = 5.0

    def __post_init__(self) -> None:
        if self.n_queries < 0:
            raise ValueError("n_queries must be non-negative")
        if self.budget_spread < 0:
            raise ValueError("budget_spread must be non-negative")

    def generate(self, t: int, rng: np.random.Generator) -> list[PointQuery]:
        queries = []
        for _ in range(self.n_queries):
            if self.budget_spread > 0:
                budget = rng.uniform(
                    max(0.0, self.budget - self.budget_spread),
                    self.budget + self.budget_spread,
                )
            else:
                budget = self.budget
            queries.append(
                PointQuery(
                    location=self.region.sample_location(rng),
                    budget=float(budget),
                    theta_min=self.theta_min,
                    dmax=self.dmax,
                    issued_at=t,
                )
            )
        return queries


@dataclass
class AggregateQueryWorkload:
    """Spatial aggregate queries per Section 4.4.

    The per-slot count is uniform with the given mean (``mean_queries +-
    count_spread``); the budget follows the paper's formula
    ``A(r) / (1.5 r_s) * budget_factor`` with ``r_s`` the average sensor
    coverage (= ``sensing_range``).
    """

    region: Region
    budget_factor: float = 15.0
    mean_queries: int = 30
    count_spread: int = 10
    sensing_range: float = 10.0
    # One reading represents only the sensor's immediate vicinity for the
    # eq. 5 coverage term.  Together with region sizes that make query
    # regions overlap, this puts small budget factors in the regime where
    # a sensor is worth less than its cost to any single query but worth
    # buying jointly — exactly where Figure 7 separates Algorithm 1 from
    # the sequential baseline.
    coverage_radius: float = 2.5
    min_side: float = 6.0
    max_side: float = 16.0

    def __post_init__(self) -> None:
        if self.mean_queries < 1:
            raise ValueError("mean_queries must be >= 1")
        if not (0 <= self.count_spread <= self.mean_queries):
            raise ValueError("count_spread must be in [0, mean_queries]")
        if self.min_side > self.max_side:
            raise ValueError("min_side must be <= max_side")

    def budget_for(self, region: Region) -> float:
        """The paper's area-proportional budget ``A(r)/(1.5 r_s) * b``."""
        return region.area / (1.5 * self.sensing_range) * self.budget_factor

    def generate(self, t: int, rng: np.random.Generator) -> list[SpatialAggregateQuery]:
        count = int(
            rng.integers(
                self.mean_queries - self.count_spread,
                self.mean_queries + self.count_spread + 1,
            )
        )
        queries = []
        for _ in range(count):
            sub = Region.random_subregion(
                self.region, rng, min_side=self.min_side, max_side=self.max_side
            )
            queries.append(
                SpatialAggregateQuery(
                    region=sub,
                    budget=self.budget_for(sub),
                    sensing_range=self.sensing_range,
                    coverage_radius=self.coverage_radius,
                    issued_at=t,
                )
            )
        return queries


@dataclass
class LocationMonitoringWorkload:
    """Location monitoring queries per Section 4.5.

    New queries arrive each slot until ``max_live`` are active ("the number
    of existing queries and new queries is always less than 100").  Each
    query's desired sampling times come from the OptiMoS-substitute run on
    the historical series.
    """

    region: Region
    series: np.ndarray
    model: HarmonicRegressionModel
    budget_factor: float = 15.0
    max_live: int = 100
    arrivals_per_slot: int = 10
    duration_range: tuple[int, int] = (5, 20)
    sampling_fraction: float = 1.0 / 3.0
    theta_min: float = 0.2
    dmax: float = 10.0

    def __post_init__(self) -> None:
        lo, hi = self.duration_range
        if not (1 <= lo <= hi):
            raise ValueError("duration_range must satisfy 1 <= lo <= hi")
        if not (0.0 < self.sampling_fraction <= 1.0):
            raise ValueError("sampling_fraction must be in (0, 1]")

    def generate(
        self, t: int, rng: np.random.Generator, live_count: int = 0
    ) -> list[LocationMonitoringQuery]:
        budget_room = max(0, self.max_live - live_count)
        count = min(self.arrivals_per_slot, budget_room)
        queries = []
        for _ in range(count):
            duration = int(rng.integers(self.duration_range[0], self.duration_range[1] + 1))
            t2 = t + duration - 1
            k = max(1, int(round(duration * self.sampling_fraction)))
            desired = schedule_for_window(self.series, t, duration, k, self.model)
            queries.append(
                LocationMonitoringQuery(
                    location=self.region.sample_location(rng),
                    t1=t,
                    t2=t2,
                    desired_times=desired,
                    budget=duration * self.budget_factor,
                    series=self.series,
                    model=self.model,
                    theta_min=self.theta_min,
                    dmax=self.dmax,
                )
            )
        return queries


@dataclass
class RegionMonitoringWorkload:
    """Region monitoring queries per Section 4.6: one per slot.

    Budget = ``A(r) / (3 pi r_s^2) * b`` with ``r_s`` the average sensor
    coverage distance (paper: 2 for the Intel-substitute scenario).
    """

    region: Region
    gp: GaussianProcessField
    budget_factor: float = 15.0
    sensing_radius: float = 2.0
    duration_range: tuple[int, int] = (5, 20)
    min_side: float = 3.0
    max_side: float = 10.0
    queries_per_slot: int = 1
    cell_size: float = 1.0

    def __post_init__(self) -> None:
        lo, hi = self.duration_range
        if not (1 <= lo <= hi):
            raise ValueError("duration_range must satisfy 1 <= lo <= hi")
        if self.sensing_radius <= 0:
            raise ValueError("sensing_radius must be positive")

    def budget_for(self, region: Region) -> float:
        return region.area / (3.0 * math.pi * self.sensing_radius**2) * self.budget_factor

    def generate(self, t: int, rng: np.random.Generator) -> list[RegionMonitoringQuery]:
        queries = []
        for _ in range(self.queries_per_slot):
            sub = Region.random_subregion(
                self.region, rng, min_side=self.min_side, max_side=self.max_side
            )
            duration = int(rng.integers(self.duration_range[0], self.duration_range[1] + 1))
            queries.append(
                RegionMonitoringQuery(
                    region=sub,
                    t1=t,
                    t2=t + duration - 1,
                    budget=self.budget_for(sub),
                    gp=self.gp,
                    cell_size=self.cell_size,
                    dmax=self.sensing_radius,
                )
            )
        return queries


@dataclass
class TrajectoryQueryWorkload:
    """Queries over trajectories (Section 2.2.3).

    The paper folds trajectories into the aggregate machinery; this
    generator emits random commute-like polylines with the same
    length-proportional budget logic the aggregate workload applies to
    areas: ``budget = length(trajectory) / (1.5 r_s) * b``.
    """

    region: Region
    budget_factor: float = 15.0
    queries_per_slot: int = 5
    sensing_range: float = 10.0
    n_waypoints: int = 4
    spacing: float = 2.0

    def __post_init__(self) -> None:
        if self.queries_per_slot < 0:
            raise ValueError("queries_per_slot must be non-negative")
        if self.n_waypoints < 2:
            raise ValueError("n_waypoints must be >= 2")

    def budget_for(self, trajectory: Trajectory) -> float:
        return trajectory.length / (1.5 * self.sensing_range) * self.budget_factor

    def generate(self, t: int, rng: np.random.Generator) -> list[TrajectoryQuery]:
        queries = []
        for _ in range(self.queries_per_slot):
            path = Trajectory.random(self.region, rng, n_waypoints=self.n_waypoints)
            queries.append(
                TrajectoryQuery(
                    path,
                    budget=self.budget_for(path),
                    sensing_range=self.sensing_range,
                    spacing=self.spacing,
                    issued_at=t,
                )
            )
        return queries


@dataclass
class EventDetectionWorkload:
    """Event-detection queries (extension; see DESIGN.md Section 8)."""

    region: Region
    threshold: float
    confidence: float = 0.9
    budget_factor: float = 15.0
    arrivals_per_slot: int = 2
    duration_range: tuple[int, int] = (5, 20)
    theta_min: float = 0.2
    dmax: float = 5.0

    def generate(self, t: int, rng: np.random.Generator) -> list[EventDetectionQuery]:
        queries = []
        for _ in range(self.arrivals_per_slot):
            duration = int(rng.integers(self.duration_range[0], self.duration_range[1] + 1))
            queries.append(
                EventDetectionQuery(
                    location=self.region.sample_location(rng),
                    t1=t,
                    t2=t + duration - 1,
                    threshold=self.threshold,
                    confidence=self.confidence,
                    budget=duration * self.budget_factor,
                    theta_min=self.theta_min,
                    dmax=self.dmax,
                )
            )
        return queries
