"""Tests for the mobility substrate (RWM, waypoint, trace, stationary, RNC)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mobility import (
    PAPER_RNC_REGION,
    PAPER_RNC_WORKING_REGION,
    MobilityTrace,
    NokiaCampaignSynthesizer,
    RandomWaypointMobility,
    StationaryMobility,
    TraceMobility,
    WaypointMobility,
)
from repro.spatial import Location, Region

REGION = Region.from_origin(80, 80)


class TestRandomWaypoint:
    def test_population_size(self):
        model = RandomWaypointMobility(REGION, 50, np.random.default_rng(0))
        assert model.n_sensors == 50
        assert len(model.locations()) == 50

    def test_positions_stay_in_region(self):
        model = RandomWaypointMobility(REGION, 30, np.random.default_rng(1))
        for _ in range(100):
            model.advance()
            assert all(REGION.contains(p) for p in model.locations())

    def test_axis_aligned_steps(self):
        model = RandomWaypointMobility(REGION, 20, np.random.default_rng(2))
        before = model.locations()
        model.advance()
        after = model.locations()
        for a, b in zip(before, after):
            # One coordinate unchanged (or clamped at the border).
            moved_x = abs(a.x - b.x) > 1e-12
            moved_y = abs(a.y - b.y) > 1e-12
            assert not (moved_x and moved_y)

    def test_step_bounded_by_max_speed(self):
        model = RandomWaypointMobility(
            REGION, 40, np.random.default_rng(3), max_speed_choices=(4.0, 5.0)
        )
        for _ in range(20):
            before = model.locations()
            model.advance()
            for a, b in zip(before, model.locations()):
                assert a.distance_to(b) <= 5.0 + 1e-9

    def test_max_speed_choices_respected(self):
        model = RandomWaypointMobility(
            REGION, 100, np.random.default_rng(4), max_speed_choices=(4.0, 5.0)
        )
        assert set(np.unique(model.max_speeds)) <= {4.0, 5.0}

    def test_invalid_args(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            RandomWaypointMobility(REGION, 0, rng)
        with pytest.raises(ValueError):
            RandomWaypointMobility(REGION, 5, rng, max_speed_choices=())

    def test_present_in_subregion(self):
        model = RandomWaypointMobility(REGION, 100, np.random.default_rng(5))
        hotspot = Region.centered_in(REGION, 50, 50)
        present = model.present_in(hotspot)
        assert all(hotspot.contains(model.location_of(i)) for i in present)

    def test_run_records_frames(self):
        model = RandomWaypointMobility(REGION, 10, np.random.default_rng(6))
        frames = model.run(5)
        assert len(frames) == 5
        assert all(len(f) == 10 for f in frames)

    def test_run_invalid(self):
        model = RandomWaypointMobility(REGION, 10, np.random.default_rng(6))
        with pytest.raises(ValueError):
            model.run(0)

    def test_deterministic_given_seed(self):
        a = RandomWaypointMobility(REGION, 10, np.random.default_rng(42))
        b = RandomWaypointMobility(REGION, 10, np.random.default_rng(42))
        a.advance()
        b.advance()
        assert a.locations() == b.locations()


class TestWaypointMobility:
    def test_reaches_targets_eventually(self):
        model = WaypointMobility(REGION, 5, np.random.default_rng(0), max_pause=0)
        start = model.locations()
        for _ in range(200):
            model.advance()
        assert model.locations() != start

    def test_stays_in_region(self):
        model = WaypointMobility(REGION, 20, np.random.default_rng(1))
        for _ in range(100):
            model.advance()
            assert all(REGION.contains(p) for p in model.locations())

    def test_invalid_speeds(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            WaypointMobility(REGION, 5, rng, min_speed=0.0)
        with pytest.raises(ValueError):
            WaypointMobility(REGION, 5, rng, min_speed=5.0, max_speed=1.0)


class TestMobilityTrace:
    def _trace(self) -> MobilityTrace:
        frames = [
            [Location(0, 0), Location(5, 5)],
            [Location(1, 0), Location(5, 6)],
            [Location(2, 0), Location(5, 7)],
        ]
        return MobilityTrace.from_frames(Region.from_origin(10, 10), frames)

    def test_dimensions(self):
        trace = self._trace()
        assert trace.n_slots == 3
        assert trace.n_sensors == 2

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            MobilityTrace(Region.from_origin(1, 1), ())

    def test_ragged_frames_rejected(self):
        with pytest.raises(ValueError):
            MobilityTrace.from_frames(
                Region.from_origin(10, 10),
                [[Location(0, 0)], [Location(0, 0), Location(1, 1)]],
            )

    def test_replay_and_hold_at_end(self):
        replay = TraceMobility(self._trace())
        assert replay.locations()[0] == Location(0, 0)
        replay.advance()
        assert replay.locations()[0] == Location(1, 0)
        replay.advance()
        replay.advance()  # past the end: hold the last frame
        assert replay.locations()[0] == Location(2, 0)
        assert replay.cursor == 2

    def test_reset(self):
        replay = TraceMobility(self._trace())
        replay.advance()
        replay.reset()
        assert replay.cursor == 0
        assert replay.locations()[0] == Location(0, 0)

    def test_save_load_roundtrip(self, tmp_path):
        trace = self._trace()
        path = tmp_path / "trace.json"
        trace.save(path)
        loaded = MobilityTrace.load(path)
        assert loaded.region == trace.region
        assert loaded.frames == trace.frames

    def test_mean_presence(self):
        trace = self._trace()
        sub = Region(0, 0, 3, 3)
        # Sensor 0 is inside sub at every slot; sensor 1 never.
        assert trace.mean_presence(sub) == pytest.approx(1.0)


class TestStationary:
    def test_never_moves(self):
        positions = [Location(1, 1), Location(2, 2)]
        model = StationaryMobility(Region.from_origin(5, 5), positions)
        model.advance()
        assert model.locations() == tuple(positions)

    def test_rejects_outside_positions(self):
        with pytest.raises(ValueError):
            StationaryMobility(Region.from_origin(5, 5), [Location(9, 9)])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            StationaryMobility(Region.from_origin(5, 5), [])


class TestNokiaSynthesizer:
    def test_default_dimensions_match_paper(self):
        assert PAPER_RNC_REGION.width == 237.0
        assert PAPER_RNC_REGION.height == 300.0
        assert PAPER_RNC_WORKING_REGION.width == 100.0

    def test_population_and_containment(self):
        model = NokiaCampaignSynthesizer(
            np.random.default_rng(0), n_sensors=100, target_presence=20
        )
        assert model.n_sensors == 100
        trace = model.synthesize(5, warmup=2)
        assert trace.n_slots == 5
        for frame in trace.frames:
            assert all(PAPER_RNC_REGION.contains(p) for p in frame)

    def test_anchor_bias_affects_presence(self):
        low = NokiaCampaignSynthesizer(
            np.random.default_rng(1), n_sensors=200, anchor_in_probability=0.0
        ).synthesize(10, warmup=10)
        high = NokiaCampaignSynthesizer(
            np.random.default_rng(1), n_sensors=200, anchor_in_probability=0.9
        ).synthesize(10, warmup=10)
        assert high.mean_presence(PAPER_RNC_WORKING_REGION) > low.mean_presence(
            PAPER_RNC_WORKING_REGION
        )

    def test_calibrated_presence_near_target(self):
        model = NokiaCampaignSynthesizer.calibrated(
            np.random.default_rng(7),
            n_sensors=300,
            target_presence=60.0,
            pilot_slots=30,
            iterations=3,
        )
        trace = model.synthesize(30, warmup=15)
        presence = trace.mean_presence(model.working_region)
        assert 0.6 * 60 <= presence <= 1.5 * 60

    def test_invalid_parameters(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            NokiaCampaignSynthesizer(rng, n_sensors=10, target_presence=50)
        with pytest.raises(ValueError):
            NokiaCampaignSynthesizer(rng, anchor_in_probability=1.5)
        with pytest.raises(ValueError):
            NokiaCampaignSynthesizer(rng, anchors_per_sensor=0)
