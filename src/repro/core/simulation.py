"""Thin compatibility wrappers over the unified :class:`SlotEngine`.

The four experiment families (Figures 2-7, 8, 9 and 10) used to each own a
copy of the slot protocol; they are now declarative configurations of
:mod:`repro.core.engine` — one engine, different stream/allocation
compositions.  The classes here keep the historical constructor signatures
(and seeded behavior) so existing call sites and scripts keep working;
new code should compose :class:`~repro.core.engine.SlotEngine` directly or
declare a :class:`~repro.datasets.scenario.ScenarioSpec`.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from ..queries import LocationMonitoringQuery, Query, RegionMonitoringQuery
from ..sensors import SensorFleet
from .allocation import Allocator
from .engine import (
    SlotEngine,
    location_monitoring_engine,
    mix_engine,
    one_shot_engine,
    region_monitoring_engine,
)
from .metrics import SimulationSummary
from .mix import BaselineMixAllocator, MixAllocator
from .monitoring import LocationMonitoringController, RegionMonitoringController

__all__ = [
    "OneShotWorkload",
    "OneShotSimulation",
    "LocationMonitoringSimulation",
    "RegionMonitoringSimulation",
    "MixSimulation",
]


class OneShotWorkload(Protocol):
    """Anything that emits fresh one-shot queries per slot."""

    def generate(self, t: int, rng: np.random.Generator) -> list[Query]: ...


class OneShotSimulation:
    """Figures 2-7: a stream of one-shot (point or aggregate) queries."""

    def __init__(
        self,
        fleet: SensorFleet,
        workload: OneShotWorkload,
        allocator: Allocator,
        rng: np.random.Generator,
    ) -> None:
        self.fleet = fleet
        self.workload = workload
        self.allocator = allocator
        self.rng = rng
        self._engine = one_shot_engine(fleet, workload, allocator, rng)

    @property
    def engine(self) -> SlotEngine:
        return self._engine

    def run(self, n_slots: int) -> SimulationSummary:
        return self._engine.run(n_slots)


class LocationMonitoringSimulation:
    """Figure 8: continuous location-monitoring queries.

    ``controller`` decides how point queries are derived (Algorithm 2, or
    its desired-times-only baseline); ``point_allocator`` answers them
    (Optimal = "Alg2-O", LocalSearch = "Alg2-LS", Baseline = "Baseline").
    """

    def __init__(
        self,
        fleet: SensorFleet,
        workload,
        point_allocator: Allocator,
        rng: np.random.Generator,
        controller: LocationMonitoringController | None = None,
    ) -> None:
        self.fleet = fleet
        self.workload = workload
        self.point_allocator = point_allocator
        self.rng = rng
        self._engine = location_monitoring_engine(
            fleet, workload, point_allocator, rng, controller=controller
        )
        self._stream = self._engine.stream("location_monitoring")
        self.controller = self._stream.controller

    @property
    def engine(self) -> SlotEngine:
        return self._engine

    @property
    def live(self) -> list[LocationMonitoringQuery]:
        return self._stream.live

    def run(self, n_slots: int) -> SimulationSummary:
        return self._engine.run(n_slots)


class RegionMonitoringSimulation:
    """Figure 9: continuous region-monitoring queries over a GP field."""

    def __init__(
        self,
        fleet: SensorFleet,
        workload,
        point_allocator: Allocator,
        rng: np.random.Generator,
        controller: RegionMonitoringController | None = None,
    ) -> None:
        self.fleet = fleet
        self.workload = workload
        self.point_allocator = point_allocator
        self.rng = rng
        self._engine = region_monitoring_engine(
            fleet, workload, point_allocator, rng, controller=controller
        )
        self._stream = self._engine.stream("region_monitoring")
        self.controller = self._stream.controller

    @property
    def engine(self) -> SlotEngine:
        return self._engine

    @property
    def live(self) -> list[RegionMonitoringQuery]:
        return self._stream.live

    def run(self, n_slots: int) -> SimulationSummary:
        return self._engine.run(n_slots)


class MixSimulation:
    """Figure 10: point + aggregate + location monitoring together.

    ``mix`` is either :class:`MixAllocator` (Algorithm 5) or
    :class:`BaselineMixAllocator`.  Region monitoring can be included but
    the paper's Figure 10 excludes it (no measurement data in RNC); pass
    ``region_workload=None`` to reproduce that.
    """

    def __init__(
        self,
        fleet: SensorFleet,
        point_workload,
        aggregate_workload,
        location_workload,
        mix: MixAllocator | BaselineMixAllocator,
        rng: np.random.Generator,
        region_workload=None,
    ) -> None:
        self.fleet = fleet
        self.point_workload = point_workload
        self.aggregate_workload = aggregate_workload
        self.location_workload = location_workload
        self.region_workload = region_workload
        self.mix = mix
        self.rng = rng
        # The wrapper decomposes the mix allocator into engine streams and a
        # slot-allocation strategy — a custom ``allocate_slot`` override
        # would be silently bypassed, so refuse it loudly.
        overridden = (
            isinstance(mix, MixAllocator)
            and type(mix).allocate_slot is not MixAllocator.allocate_slot
        ) or (
            isinstance(mix, BaselineMixAllocator)
            and type(mix).allocate_slot is not BaselineMixAllocator.allocate_slot
        )
        if overridden or not isinstance(mix, (MixAllocator, BaselineMixAllocator)):
            raise TypeError(
                "MixSimulation supports the stock MixAllocator / "
                "BaselineMixAllocator configurations; for a custom slot "
                "pipeline compose repro.core.SlotEngine (mix_engine) with "
                "your own SlotAllocation strategy instead"
            )
        if isinstance(mix, BaselineMixAllocator):
            self._engine = mix_engine(
                fleet,
                point_workload,
                aggregate_workload,
                location_workload,
                rng,
                region_workload=region_workload,
                lm_controller=mix.lm_controller,
                rm_controller=mix.rm_controller,
                sequential=True,
                stage1_allocator=mix.aggregate_stage,
                stage2_allocator=mix.point_stage,
            )
        else:
            self._engine = mix_engine(
                fleet,
                point_workload,
                aggregate_workload,
                location_workload,
                rng,
                region_workload=region_workload,
                joint=mix.joint,
                lm_controller=mix.lm_controller,
                rm_controller=mix.rm_controller,
            )

    @property
    def engine(self) -> SlotEngine:
        return self._engine

    @property
    def live_lm(self) -> list[LocationMonitoringQuery]:
        return self._engine.stream("location_monitoring").live

    @property
    def live_rm(self) -> list[RegionMonitoringQuery]:
        if self.region_workload is None:
            return []
        return self._engine.stream("region_monitoring").live

    def run(self, n_slots: int) -> SimulationSummary:
        return self._engine.run(n_slots)
