"""Tests for repro.spatial.trajectory."""

from __future__ import annotations

import numpy as np
import pytest

from repro.spatial import Location, Region, Trajectory


class TestTrajectory:
    def test_requires_two_waypoints(self):
        with pytest.raises(ValueError):
            Trajectory((Location(0, 0),))

    def test_length_of_straight_line(self):
        t = Trajectory.from_points([Location(0, 0), Location(3, 4)])
        assert t.length == pytest.approx(5.0)

    def test_length_of_polyline(self):
        t = Trajectory.from_points([Location(0, 0), Location(1, 0), Location(1, 2)])
        assert t.length == pytest.approx(3.0)

    def test_distance_to_point_on_segment(self):
        t = Trajectory.from_points([Location(0, 0), Location(10, 0)])
        assert t.distance_to(Location(5, 0)) == pytest.approx(0.0)
        assert t.distance_to(Location(5, 3)) == pytest.approx(3.0)

    def test_distance_beyond_endpoints_uses_endpoint(self):
        t = Trajectory.from_points([Location(0, 0), Location(10, 0)])
        assert t.distance_to(Location(-3, 4)) == pytest.approx(5.0)
        assert t.distance_to(Location(13, 4)) == pytest.approx(5.0)

    def test_distance_zero_length_segment(self):
        t = Trajectory.from_points([Location(1, 1), Location(1, 1)])
        assert t.distance_to(Location(4, 5)) == pytest.approx(5.0)

    def test_covers(self):
        t = Trajectory.from_points([Location(0, 0), Location(10, 0)])
        assert t.covers(Location(5, 1.5), corridor=2.0)
        assert not t.covers(Location(5, 2.5), corridor=2.0)

    def test_sample_points_spacing(self):
        t = Trajectory.from_points([Location(0, 0), Location(10, 0)])
        pts = t.sample_points(2.0)
        assert pts[0] == Location(0, 0)
        assert pts[-1] == Location(10, 0)
        for a, b in zip(pts, pts[1:]):
            assert a.distance_to(b) <= 2.0 + 1e-9

    def test_sample_points_across_corners(self):
        t = Trajectory.from_points([Location(0, 0), Location(2, 0), Location(2, 2)])
        pts = t.sample_points(1.0)
        assert Location(2, 0) not in pts or True  # corner may or may not land
        assert pts[-1] == Location(2, 2)
        assert len(pts) >= 4

    def test_sample_points_invalid_spacing(self):
        t = Trajectory.from_points([Location(0, 0), Location(1, 0)])
        with pytest.raises(ValueError):
            t.sample_points(0.0)

    def test_bounding_region(self):
        t = Trajectory.from_points([Location(1, 2), Location(5, -1)])
        box = t.bounding_region(margin=1.0)
        assert box == Region(0, -2, 6, 3)

    def test_random_stays_in_region(self):
        rng = np.random.default_rng(0)
        region = Region.from_origin(30, 30)
        for _ in range(10):
            t = Trajectory.random(region, rng, n_waypoints=5)
            assert all(region.contains(w) for w in t.waypoints)

    def test_random_needs_two_waypoints(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            Trajectory.random(Region.from_origin(5, 5), rng, n_waypoints=1)
