"""Tests for the Gaussian-process substrate (eq. 6 machinery)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phenomena import (
    GaussianProcessField,
    RBFKernel,
    VarianceReductionState,
    fit_hyperparameters,
)
from repro.spatial import Location

locations = st.builds(
    Location, st.floats(0, 10, allow_nan=False), st.floats(0, 10, allow_nan=False)
)


def grid(nx: int, ny: int) -> list[Location]:
    return [Location(float(x), float(y)) for x in range(nx) for y in range(ny)]


class TestRBFKernel:
    def test_diagonal_is_variance(self):
        k = RBFKernel(variance=2.5, length_scale=1.0)
        mat = k.matrix([Location(0, 0), Location(3, 3)])
        assert np.allclose(np.diag(mat), 2.5)

    def test_decay_with_distance(self):
        k = RBFKernel(variance=1.0, length_scale=2.0)
        near = k.matrix([Location(0, 0)], [Location(0.5, 0)])[0, 0]
        far = k.matrix([Location(0, 0)], [Location(5, 0)])[0, 0]
        assert near > far

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RBFKernel(variance=0.0)
        with pytest.raises(ValueError):
            RBFKernel(length_scale=-1.0)

    def test_matrix_is_positive_semidefinite(self):
        k = RBFKernel(1.0, 1.5)
        pts = grid(4, 4)
        eigvals = np.linalg.eigvalsh(k.matrix(pts))
        assert eigvals.min() > -1e-8


class TestVarianceReduction:
    def setup_method(self):
        self.gp = GaussianProcessField(RBFKernel(2.0, 2.0), noise=0.3)
        self.targets = grid(5, 4)

    def test_empty_sets(self):
        assert self.gp.variance_reduction([], self.targets) == 0.0
        assert self.gp.variance_reduction([Location(0, 0)], []) == 0.0

    def test_positive_and_bounded_by_prior(self):
        observed = [Location(1, 1), Location(3, 2)]
        f = self.gp.variance_reduction(observed, self.targets)
        assert 0.0 < f <= self.gp.prior_variance(self.targets) + 1e-9

    def test_monotone_in_observations(self):
        a = [Location(1, 1)]
        b = a + [Location(4, 3)]
        assert self.gp.variance_reduction(b, self.targets) >= self.gp.variance_reduction(
            a, self.targets
        )

    def test_observing_at_target_reduces_most_locally(self):
        single_target = [Location(2, 2)]
        at_target = self.gp.variance_reduction([Location(2, 2)], single_target)
        far = self.gp.variance_reduction([Location(9, 9)], single_target)
        assert at_target > far

    def test_posterior_variance_complements_reduction(self):
        observed = [Location(0, 0), Location(2, 3)]
        prior = self.gp.prior_variance(self.targets)
        reduction = self.gp.variance_reduction(observed, self.targets)
        posterior = self.gp.posterior_variance(self.targets, observed)
        assert posterior == pytest.approx(prior - reduction)

    def test_duplicate_observations_do_not_crash(self):
        observed = [Location(1, 1), Location(1, 1)]
        f = self.gp.variance_reduction(observed, self.targets)
        assert np.isfinite(f)

    def test_invalid_noise(self):
        with pytest.raises(ValueError):
            GaussianProcessField(RBFKernel(), noise=0.0)

    @given(st.lists(locations, min_size=1, max_size=5), st.lists(locations, min_size=1, max_size=4))
    @settings(max_examples=30, deadline=None)
    def test_reduction_nonnegative(self, observed, targets):
        gp = GaussianProcessField(RBFKernel(1.0, 1.5), noise=0.2)
        assert gp.variance_reduction(observed, targets) >= -1e-9


class TestIncrementalState:
    @given(st.lists(locations, min_size=1, max_size=8))
    @settings(max_examples=25, deadline=None)
    def test_incremental_matches_direct(self, candidates):
        gp = GaussianProcessField(RBFKernel(1.5, 2.0), noise=0.25)
        targets = grid(4, 3)
        state = VarianceReductionState(gp, targets)
        chosen: list[Location] = []
        for c in candidates:
            direct_gain = gp.variance_reduction(chosen + [c], targets) - gp.variance_reduction(
                chosen, targets
            )
            assert state.gain(c) == pytest.approx(direct_gain, abs=1e-7)
            state.add(c)
            chosen.append(c)
        assert state.reduction == pytest.approx(
            gp.variance_reduction(chosen, targets), abs=1e-7
        )

    def test_gain_does_not_mutate(self):
        gp = GaussianProcessField(RBFKernel(1.0, 1.0), noise=0.2)
        state = VarianceReductionState(gp, grid(3, 3))
        state.add(Location(0, 0))
        before = state.reduction
        state.gain(Location(1, 1))
        assert state.reduction == before
        assert len(state.observed) == 1


class TestPredict:
    def test_predict_interpolates_observations(self):
        gp = GaussianProcessField(RBFKernel(1.0, 2.0), noise=0.01)
        observed = [Location(0, 0), Location(4, 0)]
        values = np.array([1.0, -1.0])
        mean, var = gp.predict(observed, values, observed)
        assert mean[0] == pytest.approx(1.0, abs=0.05)
        assert mean[1] == pytest.approx(-1.0, abs=0.05)
        assert (var >= 0).all()

    def test_predict_with_no_observations_returns_prior(self):
        gp = GaussianProcessField(RBFKernel(2.0, 1.0), noise=0.1)
        mean, var = gp.predict([], np.array([]), grid(2, 2))
        assert (mean == 0).all()
        assert np.allclose(var, 2.0)

    def test_predict_misaligned_inputs(self):
        gp = GaussianProcessField(RBFKernel(), noise=0.1)
        with pytest.raises(ValueError):
            gp.predict([Location(0, 0)], np.array([1.0, 2.0]), [Location(1, 1)])


class TestHyperparameterFit:
    def test_recovers_reasonable_scales(self):
        rng = np.random.default_rng(0)
        true = RBFKernel(variance=2.0, length_scale=2.5)
        gp = GaussianProcessField(true, noise=0.2)
        pts = grid(7, 7)
        values = gp.sample(pts, rng) + rng.normal(0, 0.2, len(pts))
        fitted = fit_hyperparameters(pts, values)
        assert 0.3 <= fitted.variance <= 15.0
        assert 0.5 <= fitted.length_scale <= 10.0
        assert fitted.noise > 0

    def test_noise_floor_applied(self):
        rng = np.random.default_rng(1)
        gp = GaussianProcessField(RBFKernel(1.0, 2.0), noise=0.05)
        pts = grid(6, 6)
        values = gp.sample(pts, rng)  # noiseless observations
        fitted = fit_hyperparameters(pts, values)
        assert fitted.noise >= 0.05 * np.sqrt(fitted.variance) - 1e-12

    def test_requires_enough_points(self):
        with pytest.raises(ValueError):
            fit_hyperparameters([Location(0, 0)], np.array([1.0]))

    def test_misaligned_inputs(self):
        with pytest.raises(ValueError):
            fit_hyperparameters([Location(0, 0), Location(1, 1)], np.array([1.0]))
