"""Tests for the Feige et al. local search (Section 3.1.2)."""

from __future__ import annotations

import numpy as np
import pytest

from helpers import make_point_query, make_snapshot, random_instance
from repro.core import (
    LocalSearchPointAllocator,
    OptimalPointAllocator,
    RandomizedLocalSearchAllocator,
    exhaustive_point_search,
)
from repro.core.point_problem import PointProblem


class TestLocalSearch:
    @pytest.mark.parametrize("seed", range(15))
    def test_achieves_third_of_optimum(self, seed):
        """[3]: deterministic local search is a (1/3 - eps)-approximation."""
        queries, sensors = random_instance(seed, n_sensors=8, n_queries=10)
        ls = LocalSearchPointAllocator().allocate(queries, sensors)
        _, best = exhaustive_point_search(queries, sensors)
        assert ls.total_utility >= best / 3.0 - 1e-9

    @pytest.mark.parametrize("seed", range(15))
    def test_never_beats_optimum(self, seed):
        queries, sensors = random_instance(seed, n_sensors=8, n_queries=10)
        ls = LocalSearchPointAllocator().allocate(queries, sensors)
        opt = OptimalPointAllocator().allocate(queries, sensors)
        assert ls.total_utility <= opt.total_utility + 1e-9

    def test_close_to_optimal_at_scale(self):
        """The paper observes LS 'finds solutions close to the optimal'."""
        queries, sensors = random_instance(99, n_sensors=40, n_queries=80, side=30.0)
        ls = LocalSearchPointAllocator().allocate(queries, sensors)
        opt = OptimalPointAllocator().allocate(queries, sensors)
        assert ls.total_utility >= 0.9 * opt.total_utility

    def test_empty_inputs(self):
        assert LocalSearchPointAllocator().allocate([], []).total_utility == 0.0

    def test_no_positive_singleton_returns_empty(self):
        queries = [make_point_query(x=0, y=0, budget=5.0, theta_min=0.0)]
        sensors = [make_snapshot(0, x=0, y=0, cost=100.0)]
        result = LocalSearchPointAllocator().allocate(queries, [sensors[0]])
        assert result.answered_count() == 0

    def test_useless_members_dropped(self):
        """Post-processing drops selected sensors that win no location."""
        queries, sensors = random_instance(5, n_sensors=10, n_queries=12)
        allocator = LocalSearchPointAllocator()
        problem = PointProblem.build(queries, sensors)
        mask = allocator.search(problem)
        winners = problem.assign_winners(mask)
        assert set(np.flatnonzero(mask)) == set(winners.values())

    def test_invariants(self):
        queries, sensors = random_instance(7, n_sensors=12, n_queries=20)
        LocalSearchPointAllocator().allocate(queries, sensors).verify()

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            LocalSearchPointAllocator(epsilon=0.0)

    def test_deterministic(self):
        queries, sensors = random_instance(11, n_sensors=10, n_queries=15)
        a = LocalSearchPointAllocator().allocate(queries, sensors)
        b = LocalSearchPointAllocator().allocate(queries, sensors)
        assert a.total_utility == b.total_utility
        assert a.assignments == b.assignments


class TestRandomizedLocalSearch:
    @pytest.mark.parametrize("seed", range(8))
    def test_at_least_as_good_as_deterministic(self, seed):
        queries, sensors = random_instance(seed, n_sensors=8, n_queries=10)
        det = LocalSearchPointAllocator().allocate(queries, sensors)
        rand = RandomizedLocalSearchAllocator(n_restarts=3, seed=0).allocate(
            queries, sensors
        )
        assert rand.total_utility >= det.total_utility - 1e-9

    def test_restores_problem_values(self):
        queries, sensors = random_instance(3)
        problem = PointProblem.build(queries, sensors)
        original = problem.values.copy()
        RandomizedLocalSearchAllocator(n_restarts=2, seed=1).search(problem)
        assert np.array_equal(problem.values, original)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RandomizedLocalSearchAllocator(n_restarts=0)
        with pytest.raises(ValueError):
            RandomizedLocalSearchAllocator(noise_scale=-0.1)
