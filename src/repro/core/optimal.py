"""Optimal scheduling of single-sensor point queries (Section 3.1.1, eq. 9).

The per-slot problem is expressed as a Binary Integer Linear Program::

    max  sum_{l, i} v'_l(s_i) Y_l^i  -  sum_i c_i X_i
    s.t. Y_l^i <= X_i          for all i, l
         sum_i Y_l^i <= 1      for all l

We solve it with HiGHS through :func:`scipy.optimize.milp` using a *sparse*
formulation: a variable ``Y_l^i`` is instantiated only when ``v_l(s_i) > 0``
(the paper's eq. 10 assigns value −1 to all other pairs purely to forbid
them — omitting the variable is equivalent and shrinks paper-scale
instances from ~60k to a few thousand binaries).

An exhaustive reference solver over sensor subsets is included for
validating optimality on small instances (used heavily by the test suite).
"""

from __future__ import annotations

import itertools
from typing import Sequence

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

from ..queries import PointQuery
from ..sensors import SensorSnapshot
from .allocation import AllocationResult
from .errors import SolverError
from .point_problem import PointProblem
from .valuation import ValuationKernel

__all__ = ["OptimalPointAllocator", "exhaustive_point_search"]


class OptimalPointAllocator:
    """Exact BILP scheduling of single-sensor point queries.

    Args:
        time_limit: optional HiGHS wall-clock limit in seconds; on timeout
            the incumbent is rejected and :class:`SolverError` raised (the
            experiments never hit this at paper scale).
        mip_rel_gap: relative optimality gap tolerance (0 = prove optimal).
        sparse: prune valueless ``Y_l^i`` variables (default).  ``False``
            instantiates every pair with eq. 10's literal −1 objective
            entry — same optimum, far larger model; kept for the ablation
            benchmark and as an executable proof of the equivalence.
    """

    name = "Optimal"
    supports_kernel = True

    def __init__(
        self,
        time_limit: float | None = None,
        mip_rel_gap: float = 0.0,
        sparse: bool = True,
    ) -> None:
        self.time_limit = time_limit
        self.mip_rel_gap = mip_rel_gap
        self.sparse = sparse

    def allocate(
        self,
        queries: Sequence[PointQuery],
        sensors: Sequence[SensorSnapshot],
        kernel: ValuationKernel | None = None,
    ) -> AllocationResult:
        problem = PointProblem.build(list(queries), list(sensors), kernel=kernel)
        if problem.n_sensors == 0 or problem.n_locations == 0:
            return AllocationResult()

        if self.sparse:
            rows, cols = np.nonzero(problem.values > 0.0)
            if len(rows) == 0:
                return AllocationResult()
            pair_values = problem.values[rows, cols]
        else:
            # Dense eq. 10 formulation: v'_l(s_i) = -1 for valueless pairs.
            if not (problem.values > 0.0).any():
                return AllocationResult()
            rows, cols = np.indices(problem.values.shape)
            rows, cols = rows.ravel(), cols.ravel()
            pair_values = np.where(
                problem.values.ravel() > 0.0, problem.values.ravel(), -1.0
            )

        used_sensors = np.unique(cols)
        sensor_var = {int(col): k for k, col in enumerate(used_sensors)}
        n_x = len(used_sensors)
        n_y = len(rows)
        n_vars = n_x + n_y

        # Objective (milp minimizes): costs on X, negated values on Y.
        objective = np.concatenate(
            [problem.costs[used_sensors], -pair_values]
        )

        # Y_k - X_{i(k)} <= 0
        coupling = sparse.lil_matrix((n_y, n_vars))
        for k, col in enumerate(cols):
            coupling[k, n_x + k] = 1.0
            coupling[k, sensor_var[int(col)]] = -1.0

        # sum_{k in location l} Y_k <= 1
        location_rows: dict[int, list[int]] = {}
        for k, row in enumerate(rows):
            location_rows.setdefault(int(row), []).append(k)
        capacity = sparse.lil_matrix((len(location_rows), n_vars))
        for c_idx, (_, ks) in enumerate(sorted(location_rows.items())):
            for k in ks:
                capacity[c_idx, n_x + k] = 1.0

        constraints = [
            LinearConstraint(coupling.tocsr(), -np.inf, 0.0),
            LinearConstraint(capacity.tocsr(), -np.inf, 1.0),
        ]
        options: dict[str, float] = {"mip_rel_gap": self.mip_rel_gap}
        if self.time_limit is not None:
            options["time_limit"] = self.time_limit
        solution = milp(
            c=objective,
            constraints=constraints,
            integrality=np.ones(n_vars),
            bounds=Bounds(0.0, 1.0),
            options=options,
        )
        if solution.status != 0 or solution.x is None:
            raise SolverError(f"HiGHS failed: status={solution.status} {solution.message}")

        winners: dict[int, int] = {}
        y = solution.x[n_x:]
        for k in np.flatnonzero(y > 0.5):
            winners[int(rows[k])] = int(cols[k])
        result = problem.settle(winners)
        result.verify()
        return result


def exhaustive_point_search(
    queries: Sequence[PointQuery], sensors: Sequence[SensorSnapshot]
) -> tuple[AllocationResult, float]:
    """Brute-force optimum over all sensor subsets (reference for tests).

    Returns the best allocation and its eq.-(12) utility.  Exponential in
    the number of sensors — keep instances small.
    """
    problem = PointProblem.build(list(queries), list(sensors))
    n = problem.n_sensors
    if n > 20:
        raise ValueError("exhaustive search is limited to <= 20 sensors")
    best_mask = np.zeros(n, dtype=bool)
    best_utility = 0.0
    for size in range(1, n + 1):
        for combo in itertools.combinations(range(n), size):
            mask = np.zeros(n, dtype=bool)
            mask[list(combo)] = True
            utility = problem.utility(mask)
            if utility > best_utility + 1e-12:
                best_utility = utility
                best_mask = mask
    winners = problem.assign_winners(best_mask)
    # Sensors that win no location only add cost; drop them.
    winning_cols = set(winners.values())
    for col in np.flatnonzero(best_mask):
        if int(col) not in winning_cols:
            best_mask[col] = False
    result = problem.settle(winners)
    result.verify()
    return result, problem.utility(best_mask)
