"""Sampling-time selection for location monitoring — OptiMoS [19] substitute.

The paper delegates "determining the sampling times for a location
monitoring query" to Yan et al.'s OptiMoS: given historical data and a fixed
number of sampling times k, pick the k timestamps such that a model fit on
the values at those timestamps minimizes the residuals against all the
historical data.  OptiMoS itself is not available; this module implements
that specification directly with a greedy forward selection (the classic
heuristic for subset selection in regression).

The output feeds ``q.T`` of Algorithm 2 and the eq. 16/17 valuation.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .timeseries import HarmonicRegressionModel, residual_sum_of_squares

__all__ = ["select_sampling_times", "schedule_for_window", "window_series"]


def select_sampling_times(
    series: np.ndarray,
    k: int,
    model: HarmonicRegressionModel,
    candidates: Sequence[int] | None = None,
) -> list[int]:
    """Greedy choice of ``k`` timestamps minimizing model residuals.

    Args:
        series: the historical data (one value per past slot).
        k: number of sampling times to select (the paper fixes it to one
           third of the query duration).
        model: the regression model family used for the residual criterion.
        candidates: timestamps eligible for selection; defaults to every
            index of ``series``.

    Returns:
        The selected timestamps in ascending order.

    Raises:
        ValueError: if ``k`` exceeds the number of candidates.
    """
    series = np.asarray(series, dtype=float)
    pool = list(range(len(series))) if candidates is None else sorted(set(candidates))
    if any(not (0 <= t < len(series)) for t in pool):
        raise ValueError("candidate timestamps must index into the series")
    if k < 0 or k > len(pool):
        raise ValueError(f"cannot select {k} sampling times from {len(pool)} candidates")
    selected: list[int] = []
    remaining = set(pool)
    for _ in range(k):
        best_t = None
        best_ssr = np.inf
        for t in sorted(remaining):
            ssr = residual_sum_of_squares(model, series, selected + [t])
            if ssr < best_ssr:
                best_t, best_ssr = t, ssr
        if best_t is None:  # pragma: no cover - guarded by k <= len(pool)
            break
        selected.append(best_t)
        remaining.discard(best_t)
    return sorted(selected)


def window_series(series: np.ndarray, start: int, duration: int) -> np.ndarray:
    """The slice of history a query window maps onto, wrapping by period.

    The paper's assumption is "the data values for the current time interval
    are almost the same as the data values in the same time interval in the
    past": slot ``start + d`` of the query corresponds to historical item
    ``(start + d) mod len(series)``.
    """
    series = np.asarray(series, dtype=float)
    if duration <= 0:
        raise ValueError("duration must be positive")
    if len(series) == 0:
        raise ValueError("series must be non-empty")
    idx = (start + np.arange(duration)) % len(series)
    return series[idx]


def schedule_for_window(
    series: np.ndarray,
    start: int,
    duration: int,
    k: int,
    model: HarmonicRegressionModel,
) -> list[int]:
    """Sampling times for a query live in ``[start, start + duration)``.

    The residual criterion is evaluated *within the query's window*: the
    model's job is to reconstruct the phenomenon during the monitoring
    period, so both the fit timestamps and the residuals range over the
    window's historical values.  (Scoring residuals over the full history
    instead lets a regularized one-sample fit spuriously outscore the full
    schedule whenever the window clusters in one phase of the period.)
    """
    local = window_series(series, start, duration)
    k = min(k, duration)
    offsets = select_sampling_times(local, k, model)
    return sorted(start + o for o in offsets)
