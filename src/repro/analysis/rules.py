"""The rule registry and the seven repo-specific invariant rules.

Each rule machine-checks one convention the reproduction's correctness
rests on (see README "Static analysis" for the invariant each protects):

Rows (CHANGES-style):
    capability-hook    REP001 - ``getattr(x, "name", ...)`` probes name real attrs
    batch-hook-pairing REP002 - scalar/batch hook pairs stay routed via the MRO guard
    determinism        REP003 - no global-state / unseeded RNGs, no wall clock
    ulp-mixed-math     REP004 - no scalar ``math.f`` in modules using ``numpy.f``
    hot-loop           REP005 - no scalar sensor-axis ``for`` loops in hot modules
    async-blocking     REP006 - no blocking calls inside ``async def`` service code
    hot-alloc          REP007 - no raw numpy allocators in hot modules (use the seam)
"""

from __future__ import annotations

import ast
import difflib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from .index import ModuleIndex, RepoIndex

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import LintConfig

__all__ = ["Finding", "Rule", "RULES", "register"]


@dataclass(frozen=True, order=True)
class Finding:
    """One lint hit, pinned to a file/line and stable under reordering."""

    path: str
    line: int
    col: int
    rule: str
    code: str
    message: str


class Rule:
    """Base: subclass, set the class attrs, implement :meth:`check`."""

    id: str = ""
    code: str = ""
    summary: str = ""

    def check(
        self, module: ModuleIndex, repo: RepoIndex, config: "LintConfig"
    ) -> Iterator[Finding]:  # pragma: no cover - interface
        raise NotImplementedError

    def finding(self, module: ModuleIndex, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=module.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.id,
            code=self.code,
            message=message,
        )


RULES: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    RULES[cls.id] = cls()
    return cls


def _in_scope(relpath: str, scope: tuple[str, ...]) -> bool:
    return any(relpath == s or relpath.startswith(s + "/") for s in scope)


# ----------------------------------------------------------------------
# REP001 — capability-hook integrity
# ----------------------------------------------------------------------
@register
class CapabilityHookRule(Rule):
    """``getattr(x, "name", default)`` probes must name a defined attribute.

    The allocators discover optional kernel/batch/stream capabilities
    (``sparse_single_values``, ``candidate_view``, ``kernel_arrays``, ...)
    through bare string probes; a rename on the providing class silently
    turns the probe into a permanent miss.  Every literal probe in the
    capability scope must resolve against the repo-wide defined-attribute
    table built by the index.
    """

    id = "capability-hook"
    code = "REP001"
    summary = "getattr capability probes must name an attribute defined in the repo"

    def check(self, module, repo, config):
        if not _in_scope(module.relpath, config.capability_scope):
            return
        known = repo.defined_attrs
        extra = set(config.extra_capabilities)
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("getattr", "hasattr")
                and len(node.args) >= 2
            ):
                continue
            arg = node.args[1]
            if not (isinstance(arg, ast.Constant) and isinstance(arg.value, str)):
                continue
            name = arg.value
            if not name.isidentifier() or name.startswith("__"):
                continue
            if name in known or name in extra:
                continue
            close = difflib.get_close_matches(name, known, n=1)
            hint = f" (did you mean {close[0]!r}?)" if close else ""
            yield self.finding(
                module,
                node,
                f'capability probe {node.func.id}(..., "{name}") names no '
                f"attribute defined anywhere in the indexed tree{hint}",
            )


# ----------------------------------------------------------------------
# REP002 — batch-hook pairing
# ----------------------------------------------------------------------
#: scalar hook -> the batch sibling whose inherited form goes stale when
#: only the scalar is overridden (the hazard batch_hook_trusted guards).
_HOOK_PAIRS = {
    "relevant": "relevant_mask",
    "gain": "gain_many",
    "sample_target": "sample_targets",
}
#: batch hooks whose *call sites* must route through the dispatch guards
#: (resolve_relevant_mask / batch_hook_trusted / masks_for_xy) so that
#: scalar-only subclass overrides are honoured.
_GUARDED_BATCH_HOOKS = ("relevant_mask", "sample_targets", "masks_for")


@register
class BatchHookPairingRule(Rule):
    """Scalar/batch hook pairs must stay coherent with the MRO guard.

    Two checks: (a) a class overriding a scalar hook while inheriting its
    batch sibling ships a stale batch form — override both, or pragma the
    intentional scalar-only fallback; (b) outside the dispatch modules,
    batch hooks may only be invoked on ``self``/``cls`` — every external
    call site must route through ``resolve_relevant_mask`` /
    ``masks_for_xy`` / a ``batch_hook_trusted`` gate so scalar-only
    overrides are not silently screened by an inherited mask.
    """

    id = "batch-hook-pairing"
    code = "REP002"
    summary = "scalar/batch hook pairs must route through the dispatch guards"

    def check(self, module, repo, config):
        for info in module.classes:
            for scalar, batch in _HOOK_PAIRS.items():
                if scalar not in info.methods or info.defines(batch):
                    continue
                ancestor = repo.ancestor_defining(info, batch)
                if ancestor is None:
                    continue
                yield Finding(
                    path=module.relpath,
                    line=info.methods[scalar],
                    col=0,
                    rule=self.id,
                    code=self.code,
                    message=(
                        f"{info.name} overrides scalar {scalar}() but inherits "
                        f"{batch}() from {ancestor.name}; the inherited batch "
                        f"hook no longer reflects the scalar semantics — "
                        f"override {batch}() too (or pragma the intentional "
                        f"scalar-only fallback)"
                    ),
                )
        if _in_scope(module.relpath, config.dispatch_modules):
            return
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _GUARDED_BATCH_HOOKS
            ):
                continue
            receiver = node.func.value
            if isinstance(receiver, ast.Name) and receiver.id in ("self", "cls"):
                continue
            guard = {
                "relevant_mask": "resolve_relevant_mask",
                "sample_targets": "batch_hook_trusted",
                "masks_for": "masks_for_xy",
            }[node.func.attr]
            yield self.finding(
                module,
                node,
                f"direct .{node.func.attr}() call bypasses the scalar-override "
                f"guard — route through {guard} so scalar-only subclass "
                f"overrides are honoured",
            )


# ----------------------------------------------------------------------
# REP003 — determinism
# ----------------------------------------------------------------------
_NP_RANDOM_SAFE = {
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "MT19937", "SFC64", "RandomState",
}
_SEEDED_CTORS = {"numpy.random.default_rng", "numpy.random.RandomState", "random.Random"}
_WALL_CLOCK = {
    "time.time": "time.time()",
    "time.time_ns": "time.time_ns()",
    "datetime.datetime.now": "datetime.now()",
    "datetime.datetime.utcnow": "datetime.utcnow()",
    "datetime.datetime.today": "datetime.today()",
    "datetime.date.today": "date.today()",
}


@register
class DeterminismRule(Rule):
    """Replay/parity contracts require seeded RNGs and no wall clock.

    Every hot-path contract in the repo (incremental replay, service
    live-vs-offline, sweep reproducibility) is *bit-identical*; a single
    global-state RNG draw or wall-clock read breaks replay silently.
    Flags module-level ``np.random.*`` / ``random.*`` draws, RNG
    constructors called without a seed, and wall-clock reads —
    everywhere under ``src/repro/`` except the CLI entry points.
    (``time.perf_counter`` stays allowed: monotonic profiling only.)
    """

    id = "determinism"
    code = "REP003"
    summary = "no global-state or unseeded RNGs, no wall-clock reads"

    def check(self, module, repo, config):
        if _in_scope(module.relpath, config.determinism_exempt):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = module.qualified_name(node.func)
            if qualified is None:
                continue
            if qualified in _SEEDED_CTORS:
                if not node.args and not node.keywords:
                    yield self.finding(
                        module,
                        node,
                        f"unseeded {qualified.rsplit('.', 1)[-1]}() — pass an "
                        f"explicit seed so replay/parity contracts stay "
                        f"bit-identical",
                    )
                continue
            if qualified.startswith("numpy.random."):
                tail = qualified.split(".", 2)[2]
                if tail not in _NP_RANDOM_SAFE:
                    yield self.finding(
                        module,
                        node,
                        f"global-state numpy RNG call {tail!r} — draw from a "
                        f"seeded np.random.Generator instead",
                    )
            elif qualified.startswith("random.") and qualified.count(".") == 1:
                yield self.finding(
                    module,
                    node,
                    f"global-state stdlib RNG call {qualified!r} — use a "
                    f"seeded random.Random or np.random.Generator",
                )
            elif qualified in _WALL_CLOCK:
                yield self.finding(
                    module,
                    node,
                    f"wall-clock read {_WALL_CLOCK[qualified]} — engine state "
                    f"must be a function of slot/seed only (time.perf_counter "
                    f"is fine for profiling)",
                )


# ----------------------------------------------------------------------
# REP004 — ULP hygiene
# ----------------------------------------------------------------------
_TRANSCENDENTALS = {
    "hypot", "sqrt", "exp", "expm1", "log", "log1p", "log2", "log10",
    "pow", "sin", "cos", "tan", "asin", "acos", "atan", "atan2",
}


@register
class UlpMixedMathRule(Rule):
    """Scalar ``math.f`` is banned in modules that also use ``numpy.f``.

    ``np.hypot`` and ``math.hypot`` (and friends) may differ in the last
    ulp, so a module mixing the two forms for the same function is one
    refactor away from a bit-parity break between its scalar and batch
    paths (the PR-2 caveat).  Pinned scalar reference paths carry a
    pragma with the parity reason.
    """

    id = "ulp-mixed-math"
    code = "REP004"
    summary = "no scalar math.f in modules that also use the numpy form"

    def check(self, module, repo, config):
        mixed = {
            fn for fn in _TRANSCENDENTALS if f"numpy.{fn}" in module.qualified_refs
        }
        if not mixed:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = module.qualified_name(node.func)
            if qualified is None or not qualified.startswith("math."):
                continue
            fn = qualified.split(".", 1)[1]
            if fn in mixed:
                yield self.finding(
                    module,
                    node,
                    f"scalar math.{fn} in a module that also uses numpy.{fn} "
                    f"— the two can differ in the last ulp; use the numpy "
                    f"form, or pragma the pinned scalar parity path",
                )


# ----------------------------------------------------------------------
# REP005 — hot-path scalar loops
# ----------------------------------------------------------------------
@register
class HotLoopRule(Rule):
    """No scalar ``for`` loops over the sensor axis in hot modules.

    The sensor axis reaches 10^5; every hot path iterates it as stacked
    arrays.  A ``for`` statement over a sensor-indexed sequence
    (``sensors``, ``snapshots``, ``candidates``, ``announcements`` — bare,
    ``enumerate(...)`` or ``range(len(...))``) in a declared hot module is
    either a regression or a deliberate scalar parity oracle, which
    carries an allow-pragma with the reason.
    """

    id = "hot-loop"
    code = "REP005"
    summary = "no scalar sensor-axis for-loops in declared hot modules"

    def check(self, module, repo, config):
        if not _in_scope(module.relpath, config.hot_scope):
            return
        names = set(config.hot_iterables)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.For):
                continue
            target = self._sensor_axis_name(node.iter, names)
            if target is None:
                continue
            yield self.finding(
                module,
                node,
                f"scalar for-loop over sensor-indexed {target!r} in a hot "
                f"module — vectorize over the announcement block, or pragma "
                f"the deliberate scalar path with its reason",
            )

    @staticmethod
    def _sensor_axis_name(node: ast.expr, names: set[str]) -> str | None:
        if isinstance(node, ast.Name) and node.id in names:
            return node.id
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id == "enumerate" and node.args:
                inner = node.args[0]
                if isinstance(inner, ast.Name) and inner.id in names:
                    return inner.id
            if node.func.id == "range" and node.args:
                inner = node.args[0]
                if (
                    isinstance(inner, ast.Call)
                    and isinstance(inner.func, ast.Name)
                    and inner.func.id == "len"
                    and inner.args
                    and isinstance(inner.args[0], ast.Name)
                    and inner.args[0].id in names
                ):
                    return inner.args[0].id
        return None


# ----------------------------------------------------------------------
# REP006 — async hygiene
# ----------------------------------------------------------------------
_BLOCKING_CALLS = {
    "time.sleep": "await asyncio.sleep(...) instead",
    "subprocess.run": "use asyncio.create_subprocess_exec",
    "subprocess.call": "use asyncio.create_subprocess_exec",
    "subprocess.check_call": "use asyncio.create_subprocess_exec",
    "subprocess.check_output": "use asyncio.create_subprocess_exec",
    "subprocess.Popen": "use asyncio.create_subprocess_exec",
    "os.system": "use asyncio.create_subprocess_shell",
    "urllib.request.urlopen": "use an executor (run_in_executor)",
    "socket.create_connection": "use asyncio.open_connection",
}
_QUEUE_TYPES = {"queue.Queue", "queue.SimpleQueue", "queue.LifoQueue", "queue.PriorityQueue"}
_QUEUE_BLOCKING_METHODS = ("get", "put", "join")


@register
class AsyncBlockingRule(Rule):
    """No blocking calls inside ``async def`` in the service package.

    The marketplace ticker is a single event loop; one ``time.sleep`` or
    sync ``Queue.get`` inside a coroutine stalls every client's admission
    path.  Flags the known blocking stdlib calls and blocking methods on
    names bound to sync ``queue.Queue`` instances within the module.
    """

    id = "async-blocking"
    code = "REP006"
    summary = "no blocking calls inside async def service code"

    def check(self, module, repo, config):
        if not _in_scope(module.relpath, config.async_scope):
            return
        sync_queues = self._sync_queue_names(module)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            yield from self._check_coroutine(module, node, sync_queues)

    @staticmethod
    def _sync_queue_names(module: ModuleIndex) -> set[str]:
        """Names (locals and ``self.x`` attrs) bound to sync queue.Queue."""
        names: set[str] = set()
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Assign) and isinstance(node.value, ast.Call)):
                continue
            if module.qualified_name(node.value.func) not in _QUEUE_TYPES:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
                elif isinstance(target, ast.Attribute):
                    names.add(target.attr)
        return names

    def _check_coroutine(self, module, func: ast.AsyncFunctionDef, sync_queues):
        # Walk the coroutine body but stop at nested *sync* defs: those run
        # via executors/callbacks, not on the event loop's critical path.
        stack = list(func.body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.ClassDef)):
                continue
            for child in ast.iter_child_nodes(node):
                stack.append(child)
            if not isinstance(node, ast.Call):
                continue
            qualified = module.qualified_name(node.func)
            if qualified in _BLOCKING_CALLS:
                yield self.finding(
                    module,
                    node,
                    f"blocking {qualified}() inside async def "
                    f"{func.name}() — {_BLOCKING_CALLS[qualified]}",
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _QUEUE_BLOCKING_METHODS
            ):
                receiver = node.func.value
                name = (
                    receiver.id if isinstance(receiver, ast.Name)
                    else receiver.attr if isinstance(receiver, ast.Attribute)
                    else None
                )
                if name in sync_queues:
                    yield self.finding(
                        module,
                        node,
                        f"blocking {name}.{node.func.attr}() on a sync "
                        f"queue.Queue inside async def {func.name}() — use "
                        f"asyncio.Queue (or run it in an executor)",
                    )


# ----------------------------------------------------------------------
# REP007 — hot-path raw allocations
# ----------------------------------------------------------------------
_RAW_ALLOCATORS = ("zeros", "empty", "full")


@register
class HotAllocRule(Rule):
    """No raw ``np.zeros``/``np.empty``/``np.full`` in declared hot modules.

    Warm greedy rounds are allocation-free: per-round scratch comes from a
    :class:`~repro.backend.SlotWorkspace` arena (``ws.empty(...)`` +
    ``out=``-routed ops) and everything else routes through the array
    backend seam (``xp.zeros`` ...), so the instrumented backend sees —
    and CI's allocation floor gates — every hot-path array the code
    materializes.  A raw module-level numpy allocator in a hot-alloc
    module is either a regression (an uncounted, un-reused temporary) or
    a deliberate cold path, which carries an allow-pragma with the
    reason.
    """

    id = "hot-alloc"
    code = "REP007"
    summary = "no raw numpy allocators in hot modules — route through the seam"

    def check(self, module, repo, config):
        if not _in_scope(module.relpath, config.hot_alloc_scope):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = module.qualified_name(node.func)
            if qualified is None or not qualified.startswith("numpy."):
                continue
            fn = qualified.split(".", 1)[1]
            if fn not in _RAW_ALLOCATORS:
                continue
            yield self.finding(
                module,
                node,
                f"raw np.{fn} in a hot-alloc module — acquire the buffer "
                f"from the slot workspace (ws.{fn}) or the backend seam "
                f"(xp.{fn}), or pragma the deliberate cold path with its "
                f"reason",
            )
