#!/usr/bin/env python
"""Quickstart: utility-driven point-query acquisition in 60 lines.

Builds the paper's RWM world (200 sensors random-waypointing over an 80x80
grid, aggregator working the central 50x50 hotspot), throws 300 point
queries per slot at it, and compares the three schedulers of Section 3.1:
the optimal BILP, the Feige local search, and the sequential baseline.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    BaselineAllocator,
    FleetConfig,
    LocalSearchPointAllocator,
    OneShotSimulation,
    OptimalPointAllocator,
    PointQueryWorkload,
    RandomWaypointMobility,
    Region,
    SensorFleet,
)

N_SLOTS = 10
QUERY_BUDGET = 15.0


def build_fleet(seed: int) -> SensorFleet:
    """200 mobile sensors; announcements restricted to the 50x50 hotspot."""
    rng = np.random.default_rng(seed)
    world = Region.from_origin(80, 80)
    hotspot = Region.centered_in(world, 50, 50)
    mobility = RandomWaypointMobility(world, n_sensors=200, rng=rng)
    return SensorFleet(mobility, hotspot, FleetConfig(), rng)


def main() -> None:
    hotspot = Region.centered_in(Region.from_origin(80, 80), 50, 50)
    workload = PointQueryWorkload(
        hotspot, n_queries=300, budget=QUERY_BUDGET, theta_min=0.2, dmax=5.0
    )

    print(f"Point queries, budget={QUERY_BUDGET}, {N_SLOTS} slots")
    print(f"{'algorithm':<12} {'avg utility/slot':>17} {'satisfaction':>13}")
    for name, allocator in [
        ("Optimal", OptimalPointAllocator()),
        ("LocalSearch", LocalSearchPointAllocator()),
        ("Baseline", BaselineAllocator()),
    ]:
        # Same seeds -> same world and same queries for every algorithm.
        sim = OneShotSimulation(
            build_fleet(seed=7), workload, allocator, np.random.default_rng(11)
        )
        summary = sim.run(N_SLOTS)
        print(
            f"{name:<12} {summary.average_utility:>17.1f} "
            f"{summary.satisfaction_ratio:>12.1%}"
        )

    print(
        "\nThe sharing algorithms answer queries the baseline cannot afford:"
        " a sensor's cost is split among every query it serves (eq. 11)."
    )


if __name__ == "__main__":
    main()
