"""The array-backend seam: one ``xp`` namespace, pluggable implementations.

Every hot path in the repo computes on numpy arrays through module-level
``np.*`` calls, which hard-wires the CPU backend and makes allocation
behavior invisible.  This package introduces the repo's array-API-style
seam:

* :class:`NumpyBackend` — the default; forwards attribute access straight
  to :mod:`numpy`, so ``xp.zeros`` *is* ``np.zeros`` (bit-identical by
  construction) plus the repo's canonical dtype constants
  (``float_dtype``/``bool_dtype``/``index_dtype``/``int64_dtype``), the
  one switch point a reduced-precision GPU backend would flip;
* :class:`InstrumentedNumpyBackend` — numpy with an **allocation meter**:
  every seam-routed allocating call is counted (arrays and bytes) under
  the current phase label.  Counts are deterministic — the same inputs
  produce the same counters on any machine — so CI can assert allocation
  floors where wall-clock floors are flaky (this repo's 1-core CI box);
* :class:`CupyBackend` / :class:`JaxBackend` — import-guarded GPU seams:
  constructing one without the library installed raises a clear
  ``ImportError``; with it installed, attribute access forwards to
  ``cupy`` / ``jax.numpy``.  Neither is a dependency of this repo.

Consumers select a backend through the ``backend=`` knob threaded through
:class:`~repro.core.engine.SlotEngine`, the engine factories,
:class:`~repro.datasets.ScenarioSpec` and the ``repro scenario`` /
``serve`` / ``replay`` CLIs; every layer validates through
:func:`normalize_backend`, mirroring ``normalize_sharding``.  Code reaches
the *active* backend through the module-level :data:`xp` proxy (or
:func:`active_backend`), scoped by the :func:`use_backend` context
manager — the engine wraps each slot step so everything a slot allocates
through the seam lands on the engine's backend.

The numpy default is bit-identical everywhere: both the plain and the
instrumented backend call the very numpy functions the code called before
the seam existed, in the same order with the same arguments.
"""

from __future__ import annotations

import contextlib
import importlib.util

import numpy as np

from .workspace import SlotWorkspace, normalize_workspace

__all__ = [
    "NumpyBackend",
    "InstrumentedNumpyBackend",
    "CupyBackend",
    "JaxBackend",
    "SlotWorkspace",
    "active_backend",
    "available_backends",
    "default_backend",
    "normalize_backend",
    "normalize_workspace",
    "resolve_backend",
    "use_backend",
    "xp",
]


class NumpyBackend:
    """The default backend: :mod:`numpy`, plus the repo's dtype constants.

    Attribute access forwards to numpy itself, so seam-routed code runs
    the exact functions it ran before the seam existed — ``xp.zeros`` is
    ``np.zeros``, down to the returned object.  The dtype constants are
    the canonical spellings of the repo's scattered ``dtype=float`` /
    ``np.intp`` / ``dtype=bool`` literals; a reduced-precision GPU backend
    overrides them in one place.
    """

    name = "numpy"
    float_dtype = np.dtype(np.float64)
    bool_dtype = np.dtype(np.bool_)
    index_dtype = np.dtype(np.intp)
    int64_dtype = np.dtype(np.int64)

    def __getattr__(self, attr: str):
        if attr.startswith("_"):
            raise AttributeError(attr)
        return getattr(np, attr)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


#: numpy functions that return a freshly allocated array; the instrumented
#: backend wraps exactly these (an explicit allowlist, so the meter's
#: semantics — "one seam-routed array materialized" — never drift with
#: numpy's namespace).
_ALLOCATORS = (
    "empty",
    "zeros",
    "ones",
    "full",
    "empty_like",
    "zeros_like",
    "ones_like",
    "full_like",
    "arange",
    "fromiter",
    "concatenate",
    "where",
    "repeat",
    "bincount",
    "copy",
)

#: allocating functions with an ``out=`` escape hatch: counted only when
#: the caller did not supply a destination buffer.
_OUT_ALLOCATORS = ("take", "cumsum")


class InstrumentedNumpyBackend(NumpyBackend):
    """Numpy with a per-phase allocation meter.

    Counts every seam-routed allocating call (and the bytes it
    materialized) under the label set by :meth:`set_phase` — the engine
    labels its four protocol phases, so a slot's allocation churn is
    attributable to announce/kernel/allocate/settle.  The wrappers call
    the same numpy functions with the same arguments, so instrumented
    runs stay bit-identical to plain numpy runs; only the counters
    differ from :class:`NumpyBackend`.  Counters are deterministic:
    asserting them replaces flaky wall-clock floors on 1-core CI boxes.
    """

    name = "instrumented"

    def __init__(self) -> None:
        self._counts: dict[str, list[int]] = {}
        self._phase: str | None = None

    def set_phase(self, label: str | None) -> None:
        """Attribute subsequent allocations to ``label`` (``None`` = unphased)."""
        self._phase = label

    def reset(self) -> None:
        """Zero every counter."""
        self._counts.clear()

    def snapshot(self) -> dict[str, tuple[int, int]]:
        """``{phase: (allocations, bytes)}`` — a copy, safe to keep."""
        return {phase: (c, b) for phase, (c, b) in self._counts.items()}

    def _record(self, arr):
        entry = self._counts.get(self._phase or "unphased")
        if entry is None:
            entry = self._counts[self._phase or "unphased"] = [0, 0]
        entry[0] += 1
        entry[1] += int(getattr(arr, "nbytes", 0))
        return arr


def _instrumented(name: str):
    fn = getattr(np, name)

    def wrapper(self, *args, **kwargs):
        return self._record(fn(*args, **kwargs))

    wrapper.__name__ = name
    wrapper.__qualname__ = f"InstrumentedNumpyBackend.{name}"
    wrapper.__doc__ = f"``np.{name}`` with the allocation recorded."
    return wrapper


def _instrumented_out(name: str):
    fn = getattr(np, name)

    def wrapper(self, *args, out=None, **kwargs):
        result = fn(*args, out=out, **kwargs)
        return result if out is not None else self._record(result)

    wrapper.__name__ = name
    wrapper.__qualname__ = f"InstrumentedNumpyBackend.{name}"
    wrapper.__doc__ = f"``np.{name}``; counted only when ``out=`` is absent."
    return wrapper


for _name in _ALLOCATORS:
    setattr(InstrumentedNumpyBackend, _name, _instrumented(_name))
for _name in _OUT_ALLOCATORS:
    setattr(InstrumentedNumpyBackend, _name, _instrumented_out(_name))
del _name


class _GuardedImportBackend:
    """Shared shape of the optional GPU backends: the array library is
    imported at *construction* (never at module import), so merely having
    the seam costs nothing and the failure mode is one clear error."""

    name = "abstract"
    _module = "override-me"
    float_dtype = np.dtype(np.float64)
    bool_dtype = np.dtype(np.bool_)
    index_dtype = np.dtype(np.intp)
    int64_dtype = np.dtype(np.int64)

    def __init__(self) -> None:
        try:
            self._mod = self._import()
        except ImportError as exc:
            raise ImportError(
                f"the {self.name!r} backend needs the {self._module!r} "
                f"package, which is not installed; install it or pick "
                f"backend='numpy' (see repro.backend.available_backends())"
            ) from exc

    def _import(self):
        raise NotImplementedError

    def __getattr__(self, attr: str):
        if attr.startswith("_"):
            raise AttributeError(attr)
        return getattr(self._mod, attr)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


class CupyBackend(_GuardedImportBackend):
    """CuPy seam: numpy-compatible GPU arrays, float64 semantics kept."""

    name = "cupy"
    _module = "cupy"

    def _import(self):
        import cupy

        return cupy


class JaxBackend(_GuardedImportBackend):
    """``jax.numpy`` seam.  JAX computes in float32 by default, so the
    dtype constants narrow accordingly — parity against numpy is *at
    tolerance*, not bit-exact (the skip-guarded backend parity tests pin
    the tolerance)."""

    name = "jax"
    _module = "jax"
    float_dtype = np.dtype(np.float32)
    index_dtype = np.dtype(np.int32)
    int64_dtype = np.dtype(np.int32)

    def _import(self):
        import jax.numpy

        return jax.numpy


_BACKENDS: dict[str, type] = {
    "numpy": NumpyBackend,
    "instrumented": InstrumentedNumpyBackend,
    "cupy": CupyBackend,
    "jax": JaxBackend,
}

_DEFAULT = NumpyBackend()


def normalize_backend(setting) -> "str | object | None":
    """Canonicalize a ``backend=`` knob value, shared by every declaring layer.

    ``None`` → ``None`` (the numpy default); a known name → its lowered
    canonical spelling; a backend *instance* (anything exposing ``empty``
    and ``zeros``) passes through so tests and power users can inject
    their own.  Anything else raises ``ValueError`` — the engine,
    :class:`~repro.datasets.ScenarioSpec` and the CLI all validate through
    here, mirroring :func:`~repro.core.sharding.normalize_sharding`.
    """
    if setting is None:
        return None
    if isinstance(setting, str):
        lowered = setting.lower()
        if lowered in _BACKENDS:
            return lowered
        raise ValueError(
            f"unknown backend {setting!r} (known: {', '.join(sorted(_BACKENDS))})"
        )
    if hasattr(setting, "empty") and hasattr(setting, "zeros"):
        return setting
    raise ValueError(f"unknown backend setting {setting!r}")


def resolve_backend(setting=None):
    """The backend *instance* for a knob value (see :func:`normalize_backend`).

    ``None`` and ``"numpy"`` resolve to one shared default instance;
    named backends construct fresh (an instrumented backend's counters
    belong to whoever asked for it).  Constructing ``"cupy"``/``"jax"``
    without the library installed raises the guard's ``ImportError``.
    """
    setting = normalize_backend(setting)
    if setting is None or setting == "numpy":
        return _DEFAULT
    if isinstance(setting, str):
        return _BACKENDS[setting]()
    return setting


def default_backend() -> NumpyBackend:
    """The shared default numpy backend instance."""
    return _DEFAULT


def available_backends() -> dict[str, bool]:
    """``{name: importable}`` for every known backend (no imports run)."""
    out = {"numpy": True, "instrumented": True}
    for name, module in (("cupy", "cupy"), ("jax", "jax")):
        out[name] = importlib.util.find_spec(module) is not None
    return out


# ----------------------------------------------------------------------
# the active-backend stack and the ``xp`` namespace proxy
# ----------------------------------------------------------------------
_STACK: list = [_DEFAULT]


def active_backend():
    """The backend ``xp`` currently forwards to."""
    return _STACK[-1]


@contextlib.contextmanager
def use_backend(backend=None):
    """Scope the active backend (engine slot steps wrap themselves here)."""
    _STACK.append(resolve_backend(backend))
    try:
        yield _STACK[-1]
    finally:
        _STACK.pop()


class _NamespaceProxy:
    """The module-level ``xp`` object: attribute access forwards to the
    active backend, so seam-routed code follows :func:`use_backend` scopes
    without threading a backend argument through every call chain."""

    __slots__ = ()

    def __getattr__(self, attr: str):
        return getattr(active_backend(), attr)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<xp -> {active_backend()!r}>"


xp = _NamespaceProxy()
