"""Batch-relevance geometry parity: ``Query.relevant_mask`` vs the scalar
``Query.relevant`` scan, array-native coverage-mask matrices vs the
``Location``-built ones, and mask-driven allocations vs the scalar-relevance
reference paths — dense and sharded.

The contract under test (see ``repro.queries.base``): every built-in query
type's ``relevant_mask`` answers the scalar predicate for each stacked
announcement column.  The purely geometric types (aggregate, trajectory,
region monitoring) share one arithmetic path between the scalar and batch
forms, so those agree *bitwise by construction*; the quality-gated types
(point, multi-point, event, location monitoring) keep their historical
``math.hypot`` scalar while the mask uses ``np.hypot`` — equivalent except
in the final ulp on engineered boundary instances, which random fleets never
hit.  Region-heavy allocations through the mask path must therefore compare
``==`` (assignments, values, payments) against the scalar-relevance
reference implementations, dense and sharded.
"""

from __future__ import annotations

import numpy as np
import pytest

from helpers import make_snapshot
from repro.core import (
    BaselineAllocator,
    GreedyAllocator,
    ShardedKernel,
    ValuationKernel,
)
from repro.core.allocation import AllocationResult
from repro.datasets import build_intel_scenario, build_ozone_dataset
from repro.queries import (
    AggregateQueryWorkload,
    EventSlotQuery,
    LocationMonitoringQuery,
    MultiSensorPointQuery,
    PointQuery,
    Query,
    QueryType,
    RegionMonitoringQuery,
    SensorRoster,
    SpatialAggregateQuery,
    TrajectoryQuery,
    TrajectoryQueryWorkload,
)
from repro.sensors import AnnouncementBatch
from repro.spatial import (
    AreaCoverage,
    Location,
    Region,
    Trajectory,
    TrajectoryCoverage,
    WeightedCoverage,
)

SIDE = 30.0


def random_sensors(rng, n=50, side=SIDE):
    return [
        make_snapshot(
            i,
            x=float(rng.uniform(0, side)),
            y=float(rng.uniform(0, side)),
            cost=float(rng.uniform(1, 10)),
            inaccuracy=float(rng.uniform(0, 0.3)),
            trust=float(rng.uniform(0.4, 1.0)),
        )
        for i in range(n)
    ]


def stacked(sensors):
    xy = np.asarray([(s.location.x, s.location.y) for s in sensors], dtype=float)
    gamma = np.asarray([s.inaccuracy for s in sensors], dtype=float)
    trust = np.asarray([s.trust for s in sensors], dtype=float)
    return xy, gamma, trust


def one_of_each_query_type(rng, side=SIDE):
    region = Region.from_origin(side, side)
    sub = Region.random_subregion(region, rng, min_side=6, max_side=14)
    trajectory = Trajectory([Location(3, 2), Location(12, 15), Location(26, 8)])
    return [
        PointQuery(Location(6, 7), budget=15.0, dmax=8.0),
        MultiSensorPointQuery(Location(14, 10), budget=25.0, n_readings=3, dmax=9.0),
        SpatialAggregateQuery(sub, budget=40.0, sensing_range=6.0, coverage_radius=3.0),
        TrajectoryQuery(trajectory, budget=35.0, sensing_range=4.0),
        EventSlotQuery(
            Location(9, 16), budget=20.0, required_confidence=0.9,
            theta_min=0.1, dmax=7.0, parent_id="ev-parent",
        ),
    ]


def assert_allocations_identical(a, b):
    """Exact (bitwise) equality of two allocation results."""
    assert a.assignments == b.assignments
    assert set(a.selected) == set(b.selected)
    assert a.values == b.values
    assert a.payments == b.payments


# ----------------------------------------------------------------------
# per-type relevant_mask vs scalar relevant
# ----------------------------------------------------------------------
class TestRelevantMaskParity:
    @pytest.mark.parametrize("seed", range(8))
    def test_every_builtin_type_matches_scalar(self, seed):
        rng = np.random.default_rng(seed)
        sensors = random_sensors(rng)
        xy, gamma, trust = stacked(sensors)
        for query in one_of_each_query_type(rng):
            mask = query.relevant_mask(xy, gamma, trust)
            assert mask is not None and mask.dtype == bool
            expected = np.asarray([query.relevant(s) for s in sensors])
            assert np.array_equal(mask, expected), type(query).__name__

    @pytest.mark.parametrize("seed", range(4))
    def test_n_equals_1_is_the_scalar_case(self, seed):
        rng = np.random.default_rng(100 + seed)
        sensors = random_sensors(rng, n=12)
        for query in one_of_each_query_type(rng):
            for s in sensors:
                row = np.asarray([[s.location.x, s.location.y]])
                mask = query.relevant_mask(
                    row, np.asarray([s.inaccuracy]), np.asarray([s.trust])
                )
                assert bool(mask[0]) == query.relevant(s)

    def test_location_list_inputs_accepted(self):
        rng = np.random.default_rng(7)
        sensors = random_sensors(rng, n=10)
        locations = [s.location for s in sensors]
        _, gamma, trust = stacked(sensors)
        query = SpatialAggregateQuery(
            Region(5, 5, 15, 15), budget=30.0, sensing_range=5.0
        )
        assert np.array_equal(
            query.relevant_mask(locations),
            np.asarray([query.relevant(s) for s in sensors]),
        )
        point = PointQuery(Location(8, 8), budget=15.0, dmax=6.0)
        assert np.array_equal(
            point.relevant_mask(locations, gamma, trust),
            np.asarray([point.relevant(s) for s in sensors]),
        )

    def test_quality_gated_masks_require_columns(self):
        xy = np.zeros((3, 2))
        for query in (
            PointQuery(Location(0, 0), budget=10.0),
            MultiSensorPointQuery(Location(0, 0), budget=10.0, n_readings=2),
            EventSlotQuery(
                Location(0, 0), budget=10.0, required_confidence=0.9,
                theta_min=0.1, dmax=5.0, parent_id="p",
            ),
        ):
            with pytest.raises(ValueError, match="gamma and trust"):
                query.relevant_mask(xy)

    def test_monitoring_masks(self):
        rng = np.random.default_rng(11)
        sensors = random_sensors(rng)
        xy, gamma, trust = stacked(sensors)
        ozone = build_ozone_dataset(11)
        lm = LocationMonitoringQuery(
            location=Location(10, 10), t1=0, t2=4, desired_times=[0, 2],
            budget=30.0, series=ozone.values, model=ozone.model(),
            theta_min=0.2, dmax=8.0,
        )
        # Location monitoring: the derived point queries' quality gate.
        derived = PointQuery(lm.location, budget=1.0, theta_min=lm.theta_min, dmax=lm.dmax)
        assert np.array_equal(
            lm.relevant_mask(xy, gamma, trust),
            np.asarray([derived.relevant(s) for s in sensors]),
        )
        with pytest.raises(ValueError, match="gamma and trust"):
            lm.relevant_mask(xy)
        # Region monitoring: Algorithm 3's in-region test.
        world = build_intel_scenario(11, n_sensors=10, n_slots=5)
        rm = RegionMonitoringQuery(
            region=Region(5, 5, 20, 20), t1=0, t2=4, budget=30.0, gp=world.gp
        )
        assert np.array_equal(
            rm.relevant_mask(xy),
            np.asarray([rm.region.contains(s.location) for s in sensors]),
        )

    def test_scalar_fallback_contract(self):
        """A query type without vectorized geometry returns None and the
        roster falls back to the per-snapshot scan."""

        class OpaqueQuery(Query):
            @property
            def query_type(self):
                return QueryType.POINT

            def value(self, snapshots):
                return float(len(snapshots))

            def relevant(self, snapshot):
                return snapshot.sensor_id % 2 == 0

        rng = np.random.default_rng(3)
        sensors = random_sensors(rng, n=9)
        query = OpaqueQuery(budget=10.0)
        xy, gamma, trust = stacked(sensors)
        assert query.relevant_mask(xy, gamma, trust) is None
        roster = SensorRoster(sensors)
        row = roster.relevance_row(query)
        assert row.tolist() == [s.sensor_id % 2 == 0 for s in sensors]

    def test_scalar_only_override_of_a_builtin_is_honoured(self):
        """A subclass of a built-in type that overrides *only* the scalar
        ``relevant`` must not be screened through the inherited mask —
        allocators fall back to the scalar scan (resolve_relevant_mask)."""
        from repro.queries import resolve_relevant_mask

        class TrustedOnly(MultiSensorPointQuery):
            def relevant(self, snapshot):
                return snapshot.trust >= 0.9 and super().relevant(snapshot)

        query = TrustedOnly(Location(0.0, 0.0), budget=20.0, n_readings=2, dmax=10.0)
        sensors = [
            make_snapshot(0, x=1.0, y=0.0, cost=1.0, trust=0.5),
            make_snapshot(1, x=2.0, y=0.0, cost=1.0, trust=0.95),
        ]
        xy, gamma, trust = stacked(sensors)
        assert resolve_relevant_mask(query, xy, gamma, trust) is None
        roster = SensorRoster(sensors)
        assert roster.relevance_row(query).tolist() == [False, True]
        for allocator in (GreedyAllocator(), BaselineAllocator()):
            result = allocator.allocate([query], sensors)
            assert set(result.selected) == {1}, type(allocator).__name__
        # Overriding the mask alongside the scalar re-enables batching.

        class TrustedOnlyMasked(TrustedOnly):
            def relevant_mask(self, xy, gamma=None, trust=None):
                base = super().relevant_mask(xy, gamma, trust)
                return base & (trust >= 0.9)

        masked = TrustedOnlyMasked(
            Location(0.0, 0.0), budget=20.0, n_readings=2, dmax=10.0
        )
        got = resolve_relevant_mask(masked, xy, gamma, trust)
        assert got is not None and got.tolist() == [False, True]

    def test_quality_hook_override_is_honoured(self):
        """Overriding a hook the scalar predicate delegates to (quality /
        value_single) also invalidates the inherited mask."""
        from repro.queries import resolve_relevant_mask

        class StrictEvent(EventSlotQuery):
            def quality(self, snapshot):  # tighter reach than the mask knows
                theta = super().quality(snapshot)
                distance = snapshot.location.distance_to(self.location)
                return theta if distance <= self.dmax / 2 else 0.0

        query = StrictEvent(
            Location(0.0, 0.0), budget=20.0, required_confidence=0.9,
            theta_min=0.0, dmax=8.0, parent_id="p",
        )
        sensors = [
            make_snapshot(0, x=1.0, y=0.0, cost=1.0),
            make_snapshot(1, x=6.0, y=0.0, cost=1.0),  # beyond dmax/2
        ]
        xy, gamma, trust = stacked(sensors)
        assert resolve_relevant_mask(query, xy, gamma, trust) is None
        assert SensorRoster(sensors).relevance_row(query).tolist() == [True, False]
        result = GreedyAllocator().allocate([query], sensors)
        assert set(result.selected) == {0}

    def test_legacy_location_coverage_override_still_works(self):
        """A user CoverageFunction overriding masks_for against the old
        Sequence[Location] signature keeps allocating (masks_for_xy shim)."""

        class LegacyCoverage(AreaCoverage):
            def masks_for(self, locations):
                # Written against the historical contract: touches .x/.y.
                return np.stack(
                    [self.mask_for(Location(l.x, l.y)) for l in locations]
                ) if len(locations) else np.zeros((0, self.cell_count), dtype=bool)

        rng = np.random.default_rng(17)
        sensors = random_sensors(rng, n=40)
        region = Region(5, 5, 18, 18)
        legacy = SpatialAggregateQuery(
            region, budget=40.0, sensing_range=6.0,
            coverage=LegacyCoverage(region, 3.0),
        )
        builtin = SpatialAggregateQuery(
            region, budget=40.0, sensing_range=6.0,
            coverage=AreaCoverage(region, 3.0), query_id=legacy.query_id,
        )
        a = GreedyAllocator().allocate([legacy], sensors)
        b = GreedyAllocator().allocate([builtin], sensors)
        assert_allocations_identical(a, b)

    def test_roster_relevance_row_uses_the_mask(self):
        """Built-in types never fall back to per-snapshot scans."""

        class ExplodingSnapshots(list):
            def __getitem__(self, item):  # pragma: no cover - guard only
                raise AssertionError("scalar fallback touched a snapshot")

        rng = np.random.default_rng(4)
        sensors = random_sensors(rng, n=20)
        roster = SensorRoster(list(sensors))
        roster.snapshots = ExplodingSnapshots()
        query = SpatialAggregateQuery(
            Region(2, 2, 12, 12), budget=20.0, sensing_range=5.0
        )
        row = roster.relevance_row(query)
        assert row.tolist() == [query.relevant(s) for s in sensors]


# ----------------------------------------------------------------------
# coverage-mask matrices: (n, 2) arrays vs Location sequences
# ----------------------------------------------------------------------
class TestMaskMatrixParity:
    @pytest.mark.parametrize("seed", range(5))
    def test_masks_for_bit_identical_across_input_forms(self, seed):
        rng = np.random.default_rng(200 + seed)
        sensors = random_sensors(rng, n=30)
        locations = [s.location for s in sensors]
        xy, _, _ = stacked(sensors)
        region = Region.random_subregion(
            Region.from_origin(SIDE, SIDE), rng, min_side=5, max_side=12
        )
        trajectory = Trajectory.random(Region.from_origin(SIDE, SIDE), rng)
        functions = [
            AreaCoverage(region, sensing_range=4.0),
            WeightedCoverage(region, 4.0, weight_fn=lambda c: 1.0 + c.x),
            TrajectoryCoverage(trajectory, sensing_range=3.0, spacing=1.5),
        ]
        for fn in functions:
            from_locations = fn.masks_for(locations)
            from_array = fn.masks_for(xy)
            stacked_scalar = np.stack([fn.mask_for(loc) for loc in locations])
            assert np.array_equal(from_array, from_locations)
            assert np.array_equal(from_array, stacked_scalar)
            # The callable form accepts arrays too, same value.
            assert fn(xy) == fn(locations)

    def test_empty_inputs(self):
        fn = AreaCoverage(Region(0, 0, 4, 4), sensing_range=2.0)
        assert fn.masks_for([]).shape == (0, fn.cell_count)
        assert fn.masks_for(np.zeros((0, 2))).shape == (0, fn.cell_count)

    def test_default_masks_for_loops_over_mask_for(self):
        """The scalar fallback contract of CoverageFunction.masks_for: the
        base implementation (mask_for loop) matches the broadcasted
        override for both input forms."""
        from repro.spatial.coverage import CoverageFunction

        fn = AreaCoverage(Region(0, 0, 6, 6), sensing_range=2.5)
        rng = np.random.default_rng(0)
        xy = rng.uniform(0, 6, size=(7, 2))
        locations = [Location(float(x), float(y)) for x, y in xy]
        assert np.array_equal(CoverageFunction.masks_for(fn, xy), fn.masks_for(xy))
        assert np.array_equal(CoverageFunction.masks_for(fn, locations), fn.masks_for(xy))


# ----------------------------------------------------------------------
# region-heavy allocation parity: mask path vs scalar-relevance reference
# ----------------------------------------------------------------------
def region_heavy_slot(seed, n_sensors=140, side=60.0):
    """A miniature of the 20k-sensor bench slot: only aggregate/trajectory
    queries (their scalar/batch arithmetic is bit-identical, so allocations
    must compare ``==``)."""
    rng = np.random.default_rng(seed)
    region = Region.from_origin(side, side)
    sensors = random_sensors(rng, n=n_sensors, side=side)
    agg = AggregateQueryWorkload(
        region, budget_factor=6.0, mean_queries=5, count_spread=2,
        sensing_range=8.0, coverage_radius=4.0, min_side=12.0, max_side=24.0,
    )
    traj = TrajectoryQueryWorkload(
        region, budget_factor=6.0, queries_per_slot=3, sensing_range=8.0
    )
    return agg.generate(0, rng) + traj.generate(0, rng), sensors


class _ReferenceBaseline:
    """The historical sequential baseline: scalar ``relevant`` candidate
    scans and a per-candidate Python pick loop over scalar ``state.gain``
    calls — the executable reference the array-native allocator is pinned
    against (region queries only; their gains are bit-identical between
    the scalar and batch states)."""

    def __init__(self, min_gain: float = 1e-9) -> None:
        self.min_gain = min_gain

    def allocate(self, queries, sensors) -> AllocationResult:
        result = AllocationResult()
        paid: set[int] = set()
        for query in queries:
            state = query.new_state()
            candidates = [s for s in sensors if query.relevant(s)]
            chosen: set[int] = set()
            while True:
                best, best_net, best_gain = None, 0.0, 0.0
                for snapshot in candidates:
                    if snapshot.sensor_id in chosen:
                        continue
                    gain = float(state.gain(snapshot))
                    if gain <= self.min_gain:
                        continue
                    effective = 0.0 if snapshot.sensor_id in paid else snapshot.cost
                    net = gain - effective
                    if net > best_net + self.min_gain:
                        best, best_net, best_gain = snapshot, net, gain
                if best is None:
                    break
                newly_paid = best.sensor_id not in paid
                state.add(best)
                chosen.add(best.sensor_id)
                paid.add(best.sensor_id)
                result.record(query, best, best_gain, best.cost if newly_paid else 0.0)
        result.verify()
        return result


class TestRegionHeavyAllocationParity:
    @pytest.mark.parametrize("seed", range(6))
    def test_greedy_masked_equals_scalar_dense_and_sharded(self, seed):
        queries, sensors = region_heavy_slot(300 + seed)
        scalar = GreedyAllocator(vectorized=False).allocate(
            queries, sensors, kernel=ValuationKernel.from_sensors(sensors)
        )
        dense = GreedyAllocator().allocate(
            queries, sensors, kernel=ValuationKernel.from_sensors(sensors)
        )
        sharded = GreedyAllocator().allocate(
            queries, sensors, kernel=ShardedKernel.from_sensors(sensors, cell_size=6.0)
        )
        assert_allocations_identical(dense, scalar)
        assert_allocations_identical(sharded, scalar)

    @pytest.mark.parametrize("seed", range(6))
    def test_baseline_masked_equals_scalar_reference(self, seed):
        queries, sensors = region_heavy_slot(400 + seed, n_sensors=90)
        reference = _ReferenceBaseline().allocate(queries, sensors)
        dense = BaselineAllocator().allocate(
            queries, sensors, kernel=ValuationKernel.from_sensors(sensors)
        )
        sharded = BaselineAllocator().allocate(
            queries, sensors, kernel=ShardedKernel.from_sensors(sensors, cell_size=7.5)
        )
        assert_allocations_identical(dense, reference)
        assert_allocations_identical(sharded, reference)

    @pytest.mark.parametrize("seed", range(4))
    def test_mixed_type_slots_stay_identical(self, seed):
        """Masks cover every type at once (point rows ride the kernel)."""
        rng = np.random.default_rng(500 + seed)
        sensors = random_sensors(rng, n=60)
        queries = one_of_each_query_type(rng)
        scalar = GreedyAllocator(vectorized=False).allocate(queries, sensors)
        dense = GreedyAllocator().allocate(queries, sensors)
        assert_allocations_identical(dense, scalar)


# ----------------------------------------------------------------------
# snapshots materialize only at result.record time
# ----------------------------------------------------------------------
def make_batch(rng, n=80, side=60.0):
    xy = rng.uniform(0, side, size=(n, 2))
    return AnnouncementBatch(
        ids=np.arange(n, dtype=np.intp),
        xy=xy,
        costs=rng.uniform(1, 10, size=n),
        gamma=rng.uniform(0, 0.3, size=n),
        trust=rng.uniform(0.4, 1.0, size=n),
        token=("geometry-parity", int(rng.integers(1 << 30))),
        clock=0,
    )


class TestLazySnapshots:
    def test_greedy_materializes_only_the_picks(self):
        rng = np.random.default_rng(21)
        batch = make_batch(rng)
        queries, _ = region_heavy_slot(21, n_sensors=1)
        result = GreedyAllocator().allocate(queries, batch)
        materialized = {j for j, s in enumerate(batch._snapshots) if s is not None}
        picked = {int(sid) for sid in result.selected}
        assert materialized == picked
        assert len(picked) > 0

    def test_baseline_materializes_only_the_picks(self):
        rng = np.random.default_rng(22)
        batch = make_batch(rng)
        queries, _ = region_heavy_slot(22, n_sensors=1)
        result = BaselineAllocator().allocate(queries, batch)
        materialized = {j for j, s in enumerate(batch._snapshots) if s is not None}
        picked = {int(sid) for sid in result.selected}
        assert materialized == picked
        assert len(picked) > 0


# ----------------------------------------------------------------------
# sharded candidate views: memoized gathers reused across queries
# ----------------------------------------------------------------------
class TestShardedCandidateViews:
    def test_queries_sharing_a_cell_range_share_the_gather(self):
        rng = np.random.default_rng(31)
        sensors = random_sensors(rng, n=60, side=40.0)
        kernel = ShardedKernel.from_sensors(sensors, cell_size=5.0)
        region = Region(10, 10, 25, 25)
        a = SpatialAggregateQuery(region, budget=30.0, sensing_range=5.0)
        b = SpatialAggregateQuery(region, budget=99.0, sensing_range=5.0)
        va = kernel.candidate_view(a)
        vb = kernel.candidate_view(b)
        assert va is not None and vb is not None
        assert va[1] is vb[1] and va[2] is vb[2] and va[3] is vb[3]

    def test_view_matches_candidate_indices(self):
        rng = np.random.default_rng(32)
        sensors = random_sensors(rng, n=50, side=40.0)
        kernel = ShardedKernel.from_sensors(sensors, cell_size=4.0)
        for query in one_of_each_query_type(rng, side=40.0):
            view = kernel.candidate_view(query)
            idx = kernel.candidate_indices(query)
            assert view is not None
            assert np.array_equal(view[0], idx)
            assert np.array_equal(view[1], kernel.sensor_xy[idx])
            assert np.array_equal(view[2], kernel.gamma[idx])
            assert np.array_equal(view[3], kernel.trust[idx])

    def test_unknown_type_returns_none(self):
        class OpaquePoint(PointQuery):
            pass

        rng = np.random.default_rng(33)
        sensors = random_sensors(rng, n=20)
        kernel = ShardedKernel.from_sensors(sensors, cell_size=4.0)
        assert kernel.candidate_view(OpaquePoint(Location(1, 1), 10.0)) is None
