"""Query abstractions shared by every allocator.

The aggregator treats valuation functions as black boxes (Section 2: "the
aggregator relies on the end users to provide a valuation function
``v_q(.)`` with each query").  Concretely, every query exposes

* :meth:`Query.value` — the set valuation ``v_q(S)`` over sensor snapshots;
* :meth:`Query.relevant` — a cheap spatial prefilter (the paper's ``Q_ls``
  in Algorithm 1: only queries a sensor can contribute to are examined);
* :meth:`Query.new_state` — an incremental-valuation state so greedy
  algorithms can evaluate marginal gains without recomputing ``v_q`` from
  scratch (the default state does exactly that recomputation; performance-
  critical query types override it).

On top of the scalar interface sits the **batch-gain protocol**: an
allocator stacks one slot's candidate announcements into a
:class:`SensorRoster` and asks each live :class:`ValuationState` for a
:class:`BatchGainState` (:meth:`ValuationState.batch`).  The batch state
evaluates the query's marginal gain against *many* candidate sensors in a
single vectorized pass (:meth:`BatchGainState.gain_many`), while the
underlying scalar state remains the source of truth for commits
(:meth:`ValuationState.add`) — batch states read the live scalar state on
every call, so no synchronization hooks are needed.  The default batch
state simply loops over :meth:`ValuationState.gain`, which keeps arbitrary
user-provided valuation functions correct; the built-in query types
override it with closed-form vectorizations.

One level above the per-query batch states sits the **block-gain
protocol**: an allocator groups same-type batch states into a
:class:`GainBlock` (:meth:`BatchGainState.block`) and evaluates *all* dirty
(query, sensor) pairs of the group in one fused
:meth:`GainBlock.gain_many_block` call per greedy round, instead of one
``gain_many`` call per dirty query row.  The built-in query types override
``block`` with stacked closed forms (quality-row matrices for the
point-flavoured types, flattened covered-cell CSR deltas for the coverage
types); the base :class:`GainBlock` falls back to a per-member
``gain_many`` loop, which keeps arbitrary subclasses correct.

Both layers are guarded by the MRO staleness test of
:func:`repro.dispatch.batch_hook_trusted`, forming the **fallback
lattice**: a subclass overriding only the scalar ``gain`` is routed out of
its base's closed-form batch state by :func:`resolve_batch_state` (it gets
the generic scalar-looping :class:`BatchGainState`); a subclass overriding
only ``gain_many`` is routed out of its base's fused block by
:func:`gain_block_trusted` (it gets the generic row-looping
:class:`GainBlock`).  Either way the override stays authoritative and the
fused path degrades one level at a time, never past correctness.

Alongside the gains sits the **batch-relevance protocol**
(:meth:`Query.relevant_mask`): one vectorized pass mapping a slot's stacked
announcement arrays — ``(n, 2)`` coordinates plus the matching inaccuracy
and trust columns — to the boolean ``Q_{l_s}`` prefilter row the scalar
:meth:`Query.relevant` answers per sensor.  Allocators screen every
announced sensor through the mask, so region-heavy slots never materialize
candidate snapshots just to ask whether a sensor could serve a query.

**Scalar fallback contract:** the base :meth:`Query.relevant_mask` returns
``None``, meaning "no vectorized geometry is available — fall back to the
per-snapshot :meth:`Query.relevant` scan".  A custom query type therefore
only ever needs the scalar predicate to be correct — including a subclass
of a built-in type that overrides *only* ``relevant``: allocators resolve
masks through :func:`resolve_relevant_mask`, which refuses an inherited
mask whenever the scalar predicate was redefined below it in the MRO.
Every built-in type overrides the mask alongside the scalar predicate,
and the purely geometric types (aggregate, trajectory)
route their *scalar* predicate through the mask with ``n = 1`` so the two
forms cannot disagree even in the final ulp.  The quality-gated types
(point, multi-point, event) keep their historical ``math.hypot`` scalar
path; their masks use ``np.hypot``, which can differ in the last ulp on
engineered boundary instances (the same caveat every batch-gain state
documents).
"""

from __future__ import annotations

import abc
import enum
import itertools
from typing import Iterable, Sequence

import numpy as np

from ..dispatch import batch_hook_trusted
from ..sensors import SensorSnapshot
from ..sensors.state import as_announcement_sequence

__all__ = [
    "QueryType",
    "Query",
    "ValuationState",
    "SensorRoster",
    "BatchGainState",
    "GainBlock",
    "new_query_id",
    "resolve_relevant_mask",
    "resolve_batch_state",
    "gain_block_trusted",
    "workspace_of",
]


def workspace_of(roster: "SensorRoster"):
    """The workspace a block/batch state should acquire scratch from.

    The driving allocator attaches its :class:`~repro.backend.SlotWorkspace`
    to the roster for the call; standalone construction (tests, the scalar
    baselines) gets a fresh pass-through workspace, so consumers run the
    same acquire/fill statements either way — the bit-identity contract of
    the backend seam.
    """
    ws = getattr(roster, "workspace", None)
    if ws is None:
        from ..backend import SlotWorkspace

        ws = SlotWorkspace(reuse=False)
    return ws


#: Methods whose override invalidates an inherited ``relevant_mask``: the
#: scalar predicate itself plus the hooks the built-in predicates delegate
#: to (``PointQuery.relevant`` → ``value_single`` → ``quality``;
#: multi-point/event ``relevant`` → ``quality``).
_RELEVANCE_HOOKS = ("relevant", "value_single", "quality")


def resolve_relevant_mask(
    query: "Query",
    xy: np.ndarray,
    gamma: np.ndarray | None = None,
    trust: np.ndarray | None = None,
) -> np.ndarray | None:
    """``query.relevant_mask(...)``, honouring scalar-only overrides.

    The consistency guard of the batch-relevance protocol
    (:func:`repro.dispatch.batch_hook_trusted`): a subclass that overrides
    the scalar :meth:`Query.relevant` — or one of the quality hooks the
    built-in predicates delegate to (:data:`_RELEVANCE_HOOKS`) — *without*
    overriding :meth:`Query.relevant_mask` would otherwise be screened
    through the inherited (now stale) mask of its base class.  When the
    mask cannot be trusted this returns ``None`` and the caller takes the
    per-snapshot scalar scan, exactly as for query types with no
    vectorized geometry at all.
    """
    if not batch_hook_trusted(type(query), "relevant_mask", _RELEVANCE_HOOKS):
        return None
    return query.relevant_mask(xy, gamma, trust)

_query_counter = itertools.count()


def new_query_id(prefix: str = "q") -> str:
    """Process-unique query identifier (stable ordering, human readable)."""
    return f"{prefix}{next(_query_counter)}"


class QueryType(enum.Enum):
    """The query taxonomy of Figure 1 (plus the event-detection extension)."""

    POINT = "point"
    MULTI_POINT = "multi_point"
    AGGREGATE = "aggregate"
    TRAJECTORY = "trajectory"
    LOCATION_MONITORING = "location_monitoring"
    REGION_MONITORING = "region_monitoring"
    EVENT = "event"

    @property
    def is_continuous(self) -> bool:
        return self in (
            QueryType.LOCATION_MONITORING,
            QueryType.REGION_MONITORING,
            QueryType.EVENT,
        )


class SensorRoster:
    """One allocator call's candidate sensors, stacked for batch gains.

    The roster fixes a *column order* — every array a batch state produces
    is indexed by position in ``snapshots`` — and shares the stacked
    coordinate/inaccuracy/trust arrays across all the call's batch states,
    so each query type vectorizes against the same memory.

    Attributes:
        snapshots: the candidates, defining the column order.
        xy: ``(n, 2)`` candidate coordinates.
        gamma: per-candidate inaccuracy ``gamma_s``.
        trust: per-candidate trust ``tau_s``.
        value_rows: optional precomputed single-sensor value rows keyed by
            query id (allocators with a slot
            :class:`~repro.core.valuation.ValuationKernel` fill this with
            one ``single_values`` block for all plain point queries instead
            of re-deriving each row).
        relevance_rows: optional precomputed boolean relevance rows keyed
            by query id — allocators that already screened ``Q_{l_s}``
            park the rows here so batch states don't re-run the scalar
            ``Query.relevant`` per candidate.
        raster: optional :class:`~repro.spatial.WorldRaster` of the slot
            the roster was cut from — kernels attach it so batch/block
            states share the slot's cached coverage rows and containment
            passes instead of re-rasterizing per query.
        kernel_columns: when the roster is a column subset of a kernel,
            the kernel (world) column index of each roster column —
            ``None`` means the identity mapping.  Raster caches are keyed
            in world columns, so block states translate through this.
        workspace: optional :class:`~repro.backend.SlotWorkspace` the
            driving allocator attached for this call — block states route
            their scratch arenas through it (:func:`workspace_of`).
            ``None`` means standalone construction; consumers fall back to
            a pass-through workspace so both situations run one code path.
    """

    def __init__(
        self,
        snapshots: Sequence[SensorSnapshot],
        xy: np.ndarray | None = None,
        gamma: np.ndarray | None = None,
        trust: np.ndarray | None = None,
    ) -> None:
        # Lists/tuples and AnnouncementBatch views index in O(1) and are
        # treated as frozen — adopt them as-is (copying a batch would
        # materialize every lazy snapshot); copy anything else defensively.
        self.snapshots = as_announcement_sequence(snapshots)
        n = len(self.snapshots)
        if xy is None:
            # Cold standalone construction: kernels hand in their stacked
            # arrays; only kernel-less rosters (tests, tiny baselines) build
            # them here, once per roster.
            xy = np.empty((n, 2), dtype=float)  # reprolint: disable=hot-alloc(cold kernel-less roster construction, once per roster)
            gamma = np.empty(n, dtype=float)  # reprolint: disable=hot-alloc(cold kernel-less roster construction, once per roster)
            trust = np.empty(n, dtype=float)  # reprolint: disable=hot-alloc(cold kernel-less roster construction, once per roster)
            for j, snapshot in enumerate(self.snapshots):
                xy[j, 0] = snapshot.location.x
                xy[j, 1] = snapshot.location.y
                gamma[j] = snapshot.inaccuracy
                trust[j] = snapshot.trust
        self.xy = xy
        self.gamma = gamma
        self.trust = trust
        self.value_rows: dict[str, np.ndarray] = {}
        self.relevance_rows: dict[str, np.ndarray] = {}
        self.raster = None
        self.kernel_columns: np.ndarray | None = None
        self.workspace = None

    def relevance_row(self, query: "Query") -> np.ndarray:
        """This query's boolean relevance over the roster (cached).

        Prefers the query's vectorized :meth:`Query.relevant_mask` over the
        roster's shared arrays; falls back to the scalar per-snapshot scan
        when the query declares no vectorized geometry.
        """
        row = self.relevance_rows.get(query.query_id)
        if row is None:
            row = resolve_relevant_mask(query, self.xy, self.gamma, self.trust)
            if row is None:
                row = np.fromiter(
                    (query.relevant(s) for s in self.snapshots), bool, self.n_sensors
                )
            self.relevance_rows[query.query_id] = row
        return row

    @property
    def n_sensors(self) -> int:
        return len(self.snapshots)

    @property
    def all_indices(self) -> np.ndarray:
        return np.arange(self.n_sensors, dtype=np.intp)


class BatchGainState:
    """Vectorized marginal-gain view of one query over a fixed roster.

    The base implementation falls back to the scalar
    :meth:`ValuationState.gain` per candidate — always correct, never
    fast.  Built-in query types return closed-form subclasses from
    :meth:`ValuationState.batch`.

    Batch states hold a reference to the *live* scalar state and re-read
    it on every :meth:`gain_many` call, so commits through
    :meth:`ValuationState.add` are picked up automatically.
    """

    def __init__(self, state: "ValuationState", roster: SensorRoster) -> None:
        self.state = state
        self.roster = roster

    def gain_many(self, indices: np.ndarray) -> np.ndarray:
        """Marginal gains of ``roster.snapshots[j]`` for each ``j`` in order."""
        gain = self.state.gain
        snapshots = self.roster.snapshots
        return np.asarray([gain(snapshots[j]) for j in indices], dtype=float)

    @classmethod
    def block(cls, members: Sequence["BatchGainState"]) -> "GainBlock":
        """A fused evaluator over same-class batch states (see the module
        docstring's block-gain protocol).

        The base implementation returns the generic row-looping
        :class:`GainBlock` — always correct, never fused.  Built-in batch
        states override this classmethod with stacked closed forms whose
        per-pair results are bit-identical to their own ``gain_many``.
        """
        return GainBlock(members)


class GainBlock:
    """Fused marginal-gain evaluation over a group of same-class batch states.

    One block owns the batch states (``members``) of every query of one
    type in an allocator call; :meth:`gain_many_block` evaluates an entire
    round's dirty (member, sensor) pairs in one pass.  Like batch states,
    blocks re-read each member's *live* scalar state on every call, so no
    synchronization hooks are needed after commits.

    The base implementation loops ``gain_many`` over the per-member runs of
    the pair list — always correct for arbitrary subclasses, merely not
    fused.  Built-in query types subclass with stacked closed forms.
    """

    def __init__(self, members: Sequence[BatchGainState]) -> None:
        self.members = list(members)

    def gain_many_block(
        self, member_idx: np.ndarray, indices: np.ndarray
    ) -> np.ndarray:
        """Gains of pair ``(members[member_idx[p]], indices[p])`` for each p.

        ``member_idx`` must be *grouped*: equal members occupy contiguous
        runs (allocators produce the pairs row-major, so this holds by
        construction).  Results are positionally aligned with the input
        pairs and bit-identical to calling each member's ``gain_many`` on
        its run.
        """
        # reprolint: disable=hot-alloc(generic row-looping fallback block; the result array is returned to the caller)
        out = np.empty(len(member_idx), dtype=float)
        if len(member_idx) == 0:
            return out
        boundaries = np.flatnonzero(np.diff(member_idx)) + 1
        starts = np.concatenate(([0], boundaries, [len(member_idx)]))
        for a, b in zip(starts[:-1], starts[1:]):
            out[a:b] = self.members[member_idx[a]].gain_many(indices[a:b])
        return out


#: Scalar hooks whose override invalidates an inherited closed-form
#: ``batch`` state: the scalar gain itself (``add`` shares its arithmetic
#: through the same state class, so ``gain`` is the one source of truth).
_GAIN_HOOKS = ("gain",)


def resolve_batch_state(state: "ValuationState", roster: SensorRoster) -> BatchGainState:
    """``state.batch(roster)``, honouring scalar-only ``gain`` overrides.

    First level of the fallback lattice (module docstring): a subclass
    that overrides the scalar :meth:`ValuationState.gain` *without*
    overriding :meth:`ValuationState.batch` must not be routed through its
    base's closed-form batch state, whose stacked arithmetic no longer
    reflects the scalar semantics.  Such states get the generic
    :class:`BatchGainState`, which loops their own ``gain``.
    """
    if batch_hook_trusted(type(state), "batch", _GAIN_HOOKS):
        return state.batch(roster)
    return BatchGainState(state, roster)


def gain_block_trusted(batch_cls: type) -> bool:
    """Whether ``batch_cls``'s ``block`` hook still speaks for ``gain_many``.

    Second level of the fallback lattice: a batch-state subclass that
    overrides ``gain_many`` without overriding the ``block`` classmethod
    must not be fused through its base's stacked block.  Callers build the
    generic row-looping :class:`GainBlock` instead, which honours the
    ``gain_many`` override.
    """
    return batch_hook_trusted(batch_cls, "block", ("gain_many",))


class ValuationState:
    """Incremental evaluation of ``v_q`` while a greedy algorithm grows a set.

    The generic implementation recomputes the full set valuation on every
    :meth:`gain` call, which is always correct; query types with structure
    (max for point queries, coverage masks for aggregates, GP Cholesky
    updates for region monitoring) override for speed.
    """

    def __init__(self, query: "Query") -> None:
        self.query = query
        self.selected: list[SensorSnapshot] = []
        self.value = 0.0

    def gain(self, snapshot: SensorSnapshot) -> float:
        """Marginal gain ``v_q(S + s) - v_q(S)`` without mutating the state."""
        return self.query.value(self.selected + [snapshot]) - self.value

    def add(self, snapshot: SensorSnapshot) -> float:
        """Commit ``snapshot`` to the set; returns the realized gain."""
        gain = self.gain(snapshot)
        self.selected.append(snapshot)
        self.value += gain
        return gain

    def batch(self, roster: SensorRoster) -> BatchGainState:
        """A vectorized gain evaluator over ``roster`` (scalar fallback)."""
        return BatchGainState(self, roster)


class Query(abc.ABC):
    """Base class: identity, budget, lifetime, and the valuation interface."""

    def __init__(self, budget: float, query_id: str | None = None, issued_at: int = 0) -> None:
        if budget < 0:
            raise ValueError("budget must be non-negative")
        self.budget = budget
        self.query_id = query_id if query_id is not None else new_query_id()
        self.issued_at = issued_at

    # ------------------------------------------------------------------
    # the valuation interface
    # ------------------------------------------------------------------
    @property
    @abc.abstractmethod
    def query_type(self) -> QueryType: ...

    @abc.abstractmethod
    def value(self, snapshots: Sequence[SensorSnapshot]) -> float:
        """Set valuation ``v_q(S)`` in currency units."""

    @abc.abstractmethod
    def relevant(self, snapshot: SensorSnapshot) -> bool:
        """Whether the sensor could contribute any value to this query."""

    def relevant_mask(
        self,
        xy: np.ndarray,
        gamma: np.ndarray | None = None,
        trust: np.ndarray | None = None,
    ) -> np.ndarray | None:
        """Vectorized ``Q_{l_s}`` prefilter over stacked announcements.

        Args:
            xy: ``(n, 2)`` announced coordinates (column ``j`` is sensor
                ``j`` of the caller's roster/kernel).
            gamma: matching per-sensor inaccuracy column.  Purely geometric
                query types ignore it; quality-gated types require it.
            trust: matching per-sensor trust column (same contract).

        Returns:
            A boolean ``(n,)`` array where entry ``j`` answers
            :meth:`relevant` for sensor ``j``, or ``None`` — the **scalar
            fallback contract**: this query declares no vectorized
            geometry and the caller must fall back to the per-snapshot
            :meth:`relevant` scan.  The base class always returns ``None``
            so user-defined query types stay correct unmodified.
        """
        return None

    def new_state(self) -> ValuationState:
        """Fresh incremental-valuation state (see :class:`ValuationState`)."""
        return ValuationState(self)

    @property
    def max_value(self) -> float:
        """Upper reference value used for quality-of-results reporting.

        For the paper's valuation functions (eqs. 3, 5, 16) this is the
        budget ``B_q``; region monitoring (eq. 7) may exceed it because
        ``F`` is unbounded — the paper's Figure 9(b) shows exactly that.
        """
        return self.budget

    def filter_relevant(self, snapshots: Iterable[SensorSnapshot]) -> list[SensorSnapshot]:
        return [s for s in snapshots if self.relevant(s)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.query_id} budget={self.budget:g}>"
