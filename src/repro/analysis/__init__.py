"""Static analysis: the AST invariant checker behind ``repro lint``.

A rule-driven linter for the conventions no test can cheaply enforce:
capability-hook integrity, scalar/batch hook pairing, determinism, ULP
hygiene, hot-path vectorization and async hygiene (see README "Static
analysis" for the rule table).  Pure stdlib — one ``ast.parse`` per file,
a shared repo index, per-line suppression pragmas and a committed
baseline for grandfathered findings.

Rows (CHANGES-style):
    index.py     - one-parse-per-file module/repo indexes + pragmas
    rules.py     - rule registry + the six repo-specific invariant rules
    engine.py    - LintConfig scoping, rule driving, suppression/baseline
    baseline.py  - grandfathered-finding fingerprints (load/match/write)
    reporting.py - text and JSON reporters shared by the CLI and CI
"""

from .baseline import apply_baseline, fingerprint, load_baseline, write_baseline
from .engine import LintConfig, LintResult, run_lint, select_rules
from .index import ModuleIndex, RepoIndex, parse_suppressions
from .reporting import format_json, format_text
from .rules import RULES, Finding, Rule

__all__ = [
    "LintConfig",
    "LintResult",
    "run_lint",
    "select_rules",
    "Finding",
    "Rule",
    "RULES",
    "ModuleIndex",
    "RepoIndex",
    "parse_suppressions",
    "fingerprint",
    "load_baseline",
    "apply_baseline",
    "write_baseline",
    "format_text",
    "format_json",
]
