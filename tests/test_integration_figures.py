"""Integration tests: tiny-scale runs of every figure, checking the
qualitative shapes the paper reports (DESIGN.md Section 5)."""

from __future__ import annotations

import dataclasses

import pytest

from repro.experiments import CI, fig2, fig7, fig8, fig9, fig10, trust_sweep

# A micro scale: every figure end-to-end in seconds.
MICRO = dataclasses.replace(
    CI,
    n_slots=4,
    point_queries_per_slot=40,
    rwm_sensors=50,
    rnc_sensors=120,
    rnc_presence=25.0,
    budgets=(7, 35),
    query_counts=(30, 60),
    aggregate_mean_queries=6,
    aggregate_budget_factors=(7, 35),
    monitoring_budget_factors=(15, 25),
    lm_max_live=12,
    lm_arrivals_per_slot=4,
    intel_sensors=15,
    mix_budget_factors=(15,),
)


@pytest.fixture(scope="module")
def fig2_result():
    return fig2(MICRO, seed=99)


class TestFig2Shapes:
    def test_sharing_algorithms_dominate_baseline(self, fig2_result):
        assert fig2_result.dominates("Optimal", "Baseline", "avg_utility", slack=1e-9)
        assert fig2_result.dominates("LocalSearch", "Baseline", "avg_utility", slack=1e-9)

    def test_optimal_at_least_local_search(self, fig2_result):
        assert fig2_result.dominates("Optimal", "LocalSearch", "avg_utility", slack=1e-6)

    def test_baseline_collapses_at_small_budget(self, fig2_result):
        i = fig2_result.x_values.index(7)
        assert fig2_result.metric("Baseline", "satisfaction_ratio")[i] == 0.0
        assert fig2_result.metric("Optimal", "satisfaction_ratio")[i] > 0.0

    def test_utility_grows_with_budget(self, fig2_result):
        series = fig2_result.metric("Optimal", "avg_utility")
        assert series[-1] > series[0]


class TestFig7Shapes:
    def test_greedy_dominates_baseline(self):
        result = fig7(MICRO, seed=99)
        assert result.dominates("Greedy", "Baseline", "avg_utility", slack=1e-9)


class TestFig8Shapes:
    def test_alg2_beats_baseline_on_quality(self):
        result = fig8(MICRO, seed=99)
        # At the largest budget factor the full algorithm must not lose on
        # result quality (opportunistic + catch-up sampling vs rigid
        # schedule).
        assert (
            result.metric("Alg2-O", "avg_quality")[-1]
            >= result.metric("Baseline", "avg_quality")[-1] - 1e-9
        )


class TestFig9Shapes:
    def test_alg3_beats_baseline(self):
        result = fig9(MICRO, seed=99)
        assert result.dominates("Alg3", "Baseline", "avg_utility", slack=1e-9)


class TestFig10Shapes:
    def test_alg5_beats_baseline(self):
        result = fig10(MICRO, seed=99)
        assert result.dominates("Alg5", "Baseline", "avg_utility", slack=1e-9)

    def test_lm_quality_advantage(self):
        result = fig10(MICRO, seed=99)
        assert (
            result.metric("Alg5", "quality_location_monitoring")[-1]
            >= result.metric("Baseline", "quality_location_monitoring")[-1] - 1e-9
        )


class TestTrustSweep:
    def test_more_trust_more_utility(self):
        result = trust_sweep(MICRO, seed=99)
        full = result.metric("FullTrust", "avg_utility")[0]
        mid = result.metric("Uniform[0.5,1]", "avg_utility")[0]
        low = result.metric("Uniform[0,1]", "avg_utility")[0]
        assert full >= mid >= low
