"""Scenario: a reproducible world for algorithm comparison.

The paper compares algorithms on *identical* inputs — same mobility, same
sensor attributes, same query stream.  A :class:`Scenario` freezes the
mobility into a replayable trace and pins the fleet seed, so
:meth:`Scenario.make_fleet` hands every algorithm an indistinguishable
fresh copy of the world.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..mobility import MobilityTrace, TraceMobility
from ..sensors import FleetConfig, SensorFleet
from ..spatial import Region

__all__ = ["Scenario"]


@dataclass(frozen=True)
class Scenario:
    """A frozen world: trace + working region + fleet parameters.

    Attributes:
        name: dataset label ("RWM", "RNC", "INTEL").
        trace: the recorded per-slot sensor positions.
        working_region: the aggregator's hotspot.
        fleet_config: population-level sensor parameters (Section 4.1).
        fleet_seed: seed for per-sensor attribute draws — fixed, so every
            :meth:`make_fleet` call yields identical sensors.
        dmax: the eq. 4 distance cutoff used by this dataset's experiments
            (paper: 5 for RWM, 10 for RNC).
    """

    name: str
    trace: MobilityTrace
    working_region: Region
    fleet_config: FleetConfig
    fleet_seed: int
    dmax: float

    @property
    def n_slots(self) -> int:
        return self.trace.n_slots

    @property
    def n_sensors(self) -> int:
        return self.trace.n_sensors

    def make_fleet(self) -> SensorFleet:
        """A fresh fleet replaying the trace from slot 0."""
        rng = np.random.default_rng(self.fleet_seed)
        return SensorFleet(
            TraceMobility(self.trace), self.working_region, self.fleet_config, rng
        )

    def with_config(self, fleet_config: FleetConfig) -> "Scenario":
        """Same world, different sensor economics (Figure 6 variations)."""
        return replace(self, fleet_config=fleet_config)
