"""Tests for the BILP optimal point allocator (Section 3.1.1)."""

from __future__ import annotations

import numpy as np
import pytest

from helpers import make_point_query, make_snapshot, random_instance
from repro.core import (
    AllocationError,
    OptimalPointAllocator,
    exhaustive_point_search,
)
from repro.core.point_problem import PointProblem
from repro.queries import SpatialAggregateQuery
from repro.spatial import Region


class TestPointProblem:
    def test_groups_by_location(self):
        queries = [
            make_point_query(x=1, y=1, query_id="a"),
            make_point_query(x=1, y=1, query_id="b"),
            make_point_query(x=5, y=5, query_id="c"),
        ]
        sensors = [make_snapshot(0, x=1, y=2)]
        problem = PointProblem.build(queries, sensors)
        assert problem.n_locations == 2
        assert problem.values.shape == (2, 1)

    def test_location_value_sums_queries(self):
        queries = [
            make_point_query(x=0, y=0, budget=10.0, query_id="a"),
            make_point_query(x=0, y=0, budget=20.0, query_id="b"),
        ]
        sensor = make_snapshot(0, x=1, y=0)
        problem = PointProblem.build(queries, sensors=[sensor])
        expected = queries[0].value_single(sensor) + queries[1].value_single(sensor)
        row = 0
        assert problem.values[row, 0] == pytest.approx(expected)

    def test_rejects_non_point_queries(self):
        agg = SpatialAggregateQuery(Region.from_origin(5, 5), budget=10.0)
        with pytest.raises(AllocationError):
            PointProblem.build([agg], [])

    def test_utility_matches_eq12(self):
        queries, sensors = random_instance(0)
        problem = PointProblem.build(queries, sensors)
        mask = np.zeros(problem.n_sensors, dtype=bool)
        mask[:3] = True
        by_hand = (
            np.maximum(problem.values[:, :3].max(axis=1), 0.0).sum()
            - problem.costs[:3].sum()
        )
        assert problem.utility(mask) == pytest.approx(by_hand)

    def test_utility_of_empty_set(self):
        queries, sensors = random_instance(1)
        problem = PointProblem.build(queries, sensors)
        assert problem.utility(np.zeros(problem.n_sensors, dtype=bool)) == 0.0

    def test_settle_recovers_costs_exactly(self):
        queries, sensors = random_instance(2)
        problem = PointProblem.build(queries, sensors)
        mask = np.ones(problem.n_sensors, dtype=bool)
        winners = problem.assign_winners(mask)
        result = problem.settle(winners)
        for sid in result.selected:
            assert result.sensor_income(sid) == pytest.approx(
                result.selected[sid].cost
            )


class TestOptimalAllocator:
    @pytest.mark.parametrize("seed", range(12))
    def test_matches_exhaustive_optimum(self, seed):
        queries, sensors = random_instance(seed, n_sensors=7, n_queries=9)
        milp_result = OptimalPointAllocator().allocate(queries, sensors)
        _, best_utility = exhaustive_point_search(queries, sensors)
        assert milp_result.total_utility == pytest.approx(best_utility, abs=1e-6)

    def test_empty_inputs(self):
        assert OptimalPointAllocator().allocate([], []).total_utility == 0.0
        queries, sensors = random_instance(0)
        assert OptimalPointAllocator().allocate([], sensors).total_utility == 0.0
        assert OptimalPointAllocator().allocate(queries, []).total_utility == 0.0

    def test_no_feasible_pairs(self):
        queries = [make_point_query(x=0, y=0, dmax=1.0)]
        sensors = [make_snapshot(0, x=50, y=50)]
        result = OptimalPointAllocator().allocate(queries, sensors)
        assert result.answered_count() == 0

    def test_sharing_beats_separate_purchase(self):
        """Two co-located queries can jointly afford a sensor neither can
        alone — the core sharing effect of the BILP."""
        queries = [
            make_point_query(x=0, y=0, budget=7.0, query_id="a", theta_min=0.0),
            make_point_query(x=0, y=0, budget=7.0, query_id="b", theta_min=0.0),
        ]
        sensor = make_snapshot(0, x=0, y=0, cost=10.0)
        result = OptimalPointAllocator().allocate(queries, [sensor])
        assert result.answered_count() == 2
        assert result.total_utility == pytest.approx(4.0)
        assert result.query_payment("a") == pytest.approx(5.0)

    def test_unaffordable_sensor_not_selected(self):
        queries = [make_point_query(x=0, y=0, budget=7.0, theta_min=0.0)]
        sensor = make_snapshot(0, x=0, y=0, cost=10.0)
        result = OptimalPointAllocator().allocate(queries, [sensor])
        assert result.answered_count() == 0
        assert result.total_cost == 0.0

    def test_one_sensor_can_serve_multiple_locations(self):
        queries = [
            make_point_query(x=0, y=0, budget=20.0, query_id="a", theta_min=0.0),
            make_point_query(x=1, y=0, budget=20.0, query_id="b", theta_min=0.0),
        ]
        sensor = make_snapshot(0, x=0.5, y=0, cost=10.0)
        result = OptimalPointAllocator().allocate(queries, [sensor])
        assert result.answered_count() == 2
        assert result.total_cost == pytest.approx(10.0)

    def test_at_most_one_sensor_per_location(self):
        queries = [make_point_query(x=0, y=0, budget=30.0, theta_min=0.0)]
        sensors = [
            make_snapshot(0, x=0.5, y=0, cost=1.0),
            make_snapshot(1, x=0, y=0.5, cost=1.0),
        ]
        result = OptimalPointAllocator().allocate(queries, sensors)
        assert len(result.selected) == 1

    @pytest.mark.parametrize("seed", range(6))
    def test_invariants_on_random_instances(self, seed):
        queries, sensors = random_instance(seed, n_sensors=12, n_queries=20)
        result = OptimalPointAllocator().allocate(queries, sensors)
        result.verify()  # raises on violation

    def test_payment_never_exceeds_value(self):
        queries, sensors = random_instance(3, n_sensors=10, n_queries=15)
        result = OptimalPointAllocator().allocate(queries, sensors)
        for qid in result.values:
            assert result.query_payment(qid) <= result.values[qid] + 1e-9


class TestDenseFormulation:
    @pytest.mark.parametrize("seed", range(6))
    def test_dense_matches_sparse_optimum(self, seed):
        """Eq. 10's -1 entries and variable pruning are equivalent."""
        queries, sensors = random_instance(seed, n_sensors=6, n_queries=8)
        sparse = OptimalPointAllocator(sparse=True).allocate(queries, sensors)
        dense = OptimalPointAllocator(sparse=False).allocate(queries, sensors)
        assert dense.total_utility == pytest.approx(sparse.total_utility, abs=1e-6)

    def test_dense_invariants(self):
        queries, sensors = random_instance(3, n_sensors=6, n_queries=8)
        OptimalPointAllocator(sparse=False).allocate(queries, sensors).verify()


class TestExhaustiveSearch:
    def test_too_many_sensors_rejected(self):
        queries, sensors = random_instance(0, n_sensors=25)
        with pytest.raises(ValueError):
            exhaustive_point_search(queries, sensors)

    def test_empty_is_zero(self):
        queries, _ = random_instance(0)
        result, utility = exhaustive_point_search(queries, [])
        assert utility == 0.0
        assert result.total_utility == 0.0
