"""Synthetic substitute for the Nokia Lausanne campaign trace (RNC).

The paper's RNC dataset is derived from a proprietary data-collection
campaign (opensense.epfl.ch): 180 real participants, densified with dummy
users to **635 sensors** over a **237x300 grid** of 100 m cells, with **~120
sensors on average inside the 100x100 working subregion** per slot.

We cannot ship that data, so this module synthesizes a trace with the same
*consumable* statistics — grid dimensions, population size, working-region
presence, human-like anchor-based trips with pauses and region churn.  The
downstream algorithms only ever see per-slot (location, price) announcements
restricted to the working subregion, so matching density, sparsity and churn
reproduces the experimental conditions (see DESIGN.md, "Dataset
substitutions").

Human-like structure: every synthetic participant owns a small set of
*anchor points* (home, work, errands).  Trips run between anchors under the
classic waypoint dynamics with pauses, so participants dwell near anchors
and commute across the region — including in and out of the hotspot, which
creates exactly the uncontrolled-availability churn the paper's algorithms
must cope with.
"""

from __future__ import annotations

import numpy as np

from ..spatial import Location, Region
from .random_waypoint import WaypointMobility
from .trace import MobilityTrace

__all__ = ["NokiaCampaignSynthesizer", "PAPER_RNC_REGION", "PAPER_RNC_WORKING_REGION"]

#: Full RNC movement region from the paper: 237x300 grids of 100 m.
PAPER_RNC_REGION = Region(0.0, 0.0, 237.0, 300.0)

#: The paper's working subregion is 100x100; we centre it like the RWM hotspot.
PAPER_RNC_WORKING_REGION = Region.centered_in(PAPER_RNC_REGION, 100.0, 100.0)


class NokiaCampaignSynthesizer(WaypointMobility):
    """Anchor-based waypoint population calibrated to the paper's RNC stats.

    Args:
        rng: randomness source.
        region: full movement region (defaults to the paper's 237x300).
        working_region: hotspot used for presence calibration.
        n_sensors: population size (paper: 635).
        target_presence: desired mean number of sensors inside
            ``working_region`` per slot (paper: ~120).  Anchors are biased
            into the hotspot with exactly the probability that achieves this
            in the stationary regime.
        anchors_per_sensor: number of anchor points per participant.
        anchor_jitter: radius of uniform jitter around the chosen anchor for
            each trip destination (people do not return to the exact metre).
        min_speed / max_speed / max_pause: trip dynamics in grid cells per
            slot and slots.  With the paper's 100 m cells and 5-minute
            slots the defaults mean 18-48 km/h trips (bus/car/bike) and
            dwells of up to ~3.3 hours — people spend most slots dwelling
            at anchors, not in transit, which keeps hotspot presence
            anchored to the anchor-in probability.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        region: Region = PAPER_RNC_REGION,
        working_region: Region = PAPER_RNC_WORKING_REGION,
        n_sensors: int = 635,
        target_presence: float = 120.0,
        anchors_per_sensor: int = 3,
        anchor_jitter: float = 3.0,
        min_speed: float = 15.0,
        max_speed: float = 40.0,
        max_pause: int = 40,
        anchor_in_probability: float | None = None,
    ) -> None:
        if not region.contains_region(working_region):
            raise ValueError("working_region must lie inside the full region")
        if not (0 < target_presence <= n_sensors):
            raise ValueError("target_presence must be in (0, n_sensors]")
        if anchors_per_sensor < 1:
            raise ValueError("anchors_per_sensor must be >= 1")
        self._working_region = working_region
        self._anchor_jitter = anchor_jitter
        # A participant dwells near anchors most of the time (pauses plus
        # slow approach), so the stationary in-hotspot probability is close
        # to the fraction of anchor mass inside the hotspot; cross-region
        # trips transiting the (central) hotspot push presence above that,
        # which is what :meth:`calibrated` corrects for empirically.
        if anchor_in_probability is None:
            p_in = target_presence / n_sensors
        else:
            if not (0.0 <= anchor_in_probability <= 1.0):
                raise ValueError("anchor_in_probability must be in [0, 1]")
            p_in = anchor_in_probability
        # Anchor assignment, batched (draw order: one in/out coin batch,
        # then the in-hotspot coordinate batches, then the rejection-
        # sampled outside coordinates): an (n, A, 2) anchor tensor instead
        # of n*A Location objects.
        a = anchors_per_sensor
        inside = rng.uniform(size=n_sensors * a) < p_in
        anchor_xy = np.empty((n_sensors * a, 2), dtype=float)
        n_in = int(inside.sum())
        anchor_xy[inside, 0] = rng.uniform(
            working_region.x_min, working_region.x_max, size=n_in
        )
        anchor_xy[inside, 1] = rng.uniform(
            working_region.y_min, working_region.y_max, size=n_in
        )
        outside = ~inside
        anchor_xy[outside] = self._sample_outside_many(
            region, working_region, rng, int(outside.sum())
        )
        self._anchor_xy = anchor_xy.reshape(n_sensors, a, 2)
        super().__init__(
            region,
            n_sensors,
            rng,
            min_speed=min_speed,
            max_speed=max_speed,
            max_pause=max_pause,
        )
        # Start each participant at one of their anchors, not uniformly:
        # the very first slots should already show realistic presence.
        choice = rng.integers(0, anchors_per_sensor, size=n_sensors)
        self._positions[:] = self._anchor_xy[np.arange(n_sensors), choice]
        self._assign_trips(np.arange(n_sensors, dtype=np.intp))

    @property
    def working_region(self) -> Region:
        return self._working_region

    @property
    def anchors(self) -> list[list[Location]]:
        """Per-sensor anchor points (read-only intent)."""
        return [
            [Location(float(x), float(y)) for x, y in sensor_anchors]
            for sensor_anchors in self._anchor_xy
        ]

    def sample_target(self, index: int) -> Location:
        anchors = self._anchor_xy[index]
        anchor = anchors[int(self._rng.integers(0, len(anchors)))]
        jitter_x = self._rng.uniform(-self._anchor_jitter, self._anchor_jitter)
        jitter_y = self._rng.uniform(-self._anchor_jitter, self._anchor_jitter)
        return self.region.clamp(
            Location(float(anchor[0]) + jitter_x, float(anchor[1]) + jitter_y)
        )

    def sample_targets(self, indices: np.ndarray) -> np.ndarray:
        """Batched anchor-biased destinations (anchor choice batch, then
        the two jitter batches, then a vectorized clamp)."""
        k = len(indices)
        choice = self._rng.integers(0, self._anchor_xy.shape[1], size=k)
        picked = self._anchor_xy[indices, choice]
        jitter_x = self._rng.uniform(-self._anchor_jitter, self._anchor_jitter, size=k)
        jitter_y = self._rng.uniform(-self._anchor_jitter, self._anchor_jitter, size=k)
        region = self.region
        return np.column_stack(
            [
                np.clip(picked[:, 0] + jitter_x, region.x_min, region.x_max),
                np.clip(picked[:, 1] + jitter_y, region.y_min, region.y_max),
            ]
        )

    def synthesize(self, n_slots: int, warmup: int = 20) -> MobilityTrace:
        """Produce a replayable trace of ``n_slots`` frames.

        ``warmup`` slots are advanced and discarded first so the recorded
        frames come from the stationary regime the presence calibration
        assumes.
        """
        if n_slots <= 0:
            raise ValueError("n_slots must be positive")
        for _ in range(warmup):
            self.advance()
        # Array-native trace build: no Location objects at any fleet size.
        return MobilityTrace.from_xy(self.region, self.run_xy(n_slots))

    @classmethod
    def calibrated(
        cls,
        rng: np.random.Generator,
        pilot_slots: int = 50,
        iterations: int = 4,
        tolerance: float = 0.05,
        pilot_warmup: int = 25,
        **kwargs,
    ) -> "NokiaCampaignSynthesizer":
        """Build a synthesizer whose mean hotspot presence hits the target.

        The naive anchor bias (``target / n_sensors``) overshoots because
        trips between outside anchors transit the central hotspot.  This
        runs short pilot traces and rescales the anchor-in probability until
        the measured presence is within ``tolerance`` (relative) of
        ``target_presence``, then returns a fresh synthesizer built with the
        calibrated probability.
        """
        if pilot_slots <= 0:
            raise ValueError("pilot_slots must be positive")
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        target = kwargs.get("target_presence", 120.0)
        n_sensors = kwargs.get("n_sensors", 635)
        p_in = target / n_sensors
        seeds = rng.integers(0, 2**31 - 1, size=iterations + 1)
        for i in range(iterations):
            pilot_rng = np.random.default_rng(int(seeds[i]))
            pilot = cls(pilot_rng, anchor_in_probability=p_in, **kwargs)
            trace = pilot.synthesize(pilot_slots, warmup=pilot_warmup)
            measured = trace.mean_presence(pilot.working_region)
            if measured <= 0:
                p_in = min(1.0, p_in * 2.0)
                continue
            if abs(measured - target) / target <= tolerance:
                break
            p_in = float(min(1.0, max(1e-4, p_in * target / measured)))
        final_rng = np.random.default_rng(int(seeds[-1]))
        return cls(final_rng, anchor_in_probability=p_in, **kwargs)

    @staticmethod
    def _sample_outside(
        region: Region, hole: Region, rng: np.random.Generator, max_tries: int = 64
    ) -> Location:
        """Uniform location in ``region`` but outside ``hole`` (rejection)."""
        for _ in range(max_tries):
            candidate = region.sample_location(rng)
            if not hole.contains(candidate):
                return candidate
        # The hole covers almost everything — fall back to any location.
        return region.sample_location(rng)

    @staticmethod
    def _sample_outside_many(
        region: Region,
        hole: Region,
        rng: np.random.Generator,
        count: int,
        max_tries: int = 64,
    ) -> np.ndarray:
        """Batched rejection sampling: ``count`` uniform points outside
        ``hole`` as an ``(count, 2)`` array (each round re-draws only the
        points still inside; after ``max_tries`` rounds the stragglers
        keep their last draw, mirroring the scalar fallback)."""
        xy = np.empty((count, 2), dtype=float)
        xy[:, 0] = rng.uniform(region.x_min, region.x_max, size=count)
        xy[:, 1] = rng.uniform(region.y_min, region.y_max, size=count)
        pending = np.flatnonzero(hole.contains_many(xy))
        tries = 1
        while len(pending) and tries < max_tries:
            xy[pending, 0] = rng.uniform(region.x_min, region.x_max, size=len(pending))
            xy[pending, 1] = rng.uniform(region.y_min, region.y_max, size=len(pending))
            pending = pending[hole.contains_many(xy[pending])]
            tries += 1
        return xy
