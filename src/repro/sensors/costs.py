"""Sensor cost models (Section 2.4, eqs. 8, 14, 15).

The price a sensor announces for one measurement is the sum of an *energy*
component and a *privacy* component::

    c_s(E_s, H_s, l_s) = c_e(E_s) + c_p(p_s(H_s, l_s))      (eq. 8)

The paper's experiments use two energy models (Section 4.1):

* **fixed**:  ``c_e(E) = C_s``
* **linear**: ``c_e(E) = C_s * (1 + beta * (1 - E))`` — price climbs as the
  battery drains.

and a windowed privacy-loss model (eq. 14) that penalizes reporting in
consecutive slots, scaled by a discrete privacy sensitivity level (eq. 15).

These scalar models are the slot protocol's executable reference: the
array-backed fleet (:class:`~repro.sensors.state.FleetState`) prices whole
announcement batches with the same formulas vectorized — same per-element
operation order, and the eq.-14 accumulation is exact small-integer float
arithmetic — so batch prices are bit-identical to calling these models
sensor by sensor (pinned by ``tests/test_fleet_batch_parity.py``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Protocol, Sequence

__all__ = [
    "EnergyCostModel",
    "FixedEnergyCost",
    "LinearEnergyCost",
    "PrivacySensitivity",
    "privacy_loss",
    "PrivacyCostModel",
    "total_cost",
]


class EnergyCostModel(Protocol):
    """Maps remaining energy ``E in [0, 1]`` to a price component."""

    def __call__(self, remaining_energy: float) -> float: ...


@dataclass(frozen=True)
class FixedEnergyCost:
    """``c_e(E) = C_s`` — the paper's default (Section 4.1, ``C_s = 10``)."""

    base_price: float = 10.0

    def __post_init__(self) -> None:
        if self.base_price < 0:
            raise ValueError("base_price must be non-negative")

    def __call__(self, remaining_energy: float) -> float:
        _validate_energy(remaining_energy)
        return self.base_price


@dataclass(frozen=True)
class LinearEnergyCost:
    """``c_e(E) = C_s * (1 + beta * (1 - E))``.

    ``beta`` is the cost-increment factor; the paper's Figure 6/10
    experiments draw it uniformly from ``[0, 4]`` per sensor.
    """

    base_price: float = 10.0
    beta: float = 1.0

    def __post_init__(self) -> None:
        if self.base_price < 0:
            raise ValueError("base_price must be non-negative")
        if self.beta < 0:
            raise ValueError("beta must be non-negative")

    def __call__(self, remaining_energy: float) -> float:
        _validate_energy(remaining_energy)
        return self.base_price * (1.0 + self.beta * (1.0 - remaining_energy))


class PrivacySensitivity(enum.Enum):
    """The five privacy sensitivity levels of Section 4.1."""

    ZERO = 0.0
    LOW = 0.25
    MODERATE = 0.5
    HIGH = 0.75
    VERY_HIGH = 1.0

    @classmethod
    def from_value(cls, value: float) -> "PrivacySensitivity":
        """Map a numeric level back to the enum (exact match required)."""
        for level in cls:
            if level.value == value:
                return level
        raise ValueError(f"{value!r} is not a defined privacy sensitivity level")


def privacy_loss(history: Sequence[int], now: int, window: int) -> float:
    """Windowed privacy loss ``p_s(H_s)`` of eq. (14).

    ``history`` holds the time slots at which the sensor previously reported
    a measurement; ``window`` is the privacy window ``w``.  The loss is the
    weighted average of time distances between past reports and ``now``,
    with recent reports weighted more, normalized so that reporting in every
    one of the last ``w`` slots yields a loss of 1::

        p = (w + sum_{t' in H} (w - (now - t'))) / (w * (w + 1) / 2)

    The leading ``w`` term is the weight of the report the sensor is being
    asked to make *now* (distance 0).  Reports older than ``w`` slots have
    fallen out of the window and contribute nothing.
    """
    if window < 1:
        raise ValueError("privacy window must be >= 1")
    weighted = float(window)
    for t_prime in history:
        age = now - t_prime
        if age < 0:
            raise ValueError(f"history contains future report time {t_prime} > now={now}")
        if 0 <= age <= window:
            weighted += window - age
    return weighted / (window * (window + 1) / 2.0)


@dataclass(frozen=True)
class PrivacyCostModel:
    """``c_p = PSL_s * p_s(H_s, l_s) * C_s`` (eq. 15)."""

    sensitivity: PrivacySensitivity = PrivacySensitivity.ZERO
    base_price: float = 10.0
    window: int = 5

    def __post_init__(self) -> None:
        if self.base_price < 0:
            raise ValueError("base_price must be non-negative")
        if self.window < 1:
            raise ValueError("window must be >= 1")

    def __call__(self, history: Sequence[int], now: int) -> float:
        if self.sensitivity is PrivacySensitivity.ZERO:
            return 0.0
        return self.sensitivity.value * privacy_loss(history, now, self.window) * self.base_price


def total_cost(
    energy_model: EnergyCostModel,
    privacy_model: PrivacyCostModel,
    remaining_energy: float,
    history: Sequence[int],
    now: int,
) -> float:
    """Full announced price ``c_s`` per eq. (8)."""
    return energy_model(remaining_energy) + privacy_model(history, now)


def _validate_energy(remaining_energy: float) -> None:
    if not (0.0 <= remaining_energy <= 1.0):
        raise ValueError(f"remaining energy must be in [0, 1], got {remaining_energy}")
