"""Coverage functions ``G_q`` for aggregate and trajectory queries.

Eq. (5) of the paper values an aggregate query's sensor set as
``B_q * G_q(S_q) * mean_quality`` where ``G_q`` "calculates the coverage of
the selected sensors.  A simple coverage function can calculate the fraction
of the area covered by the sensors, while a more general function might also
take into account the dispersion or the importance of the locations".

All three flavours are provided:

* :class:`AreaCoverage` — fraction of the region's grid cells within sensing
  range of at least one selected sensor (the paper's "simple" function);
* :class:`WeightedCoverage` — cell-importance-weighted variant;
* :class:`TrajectoryCoverage` — fraction of corridor sample points covered.

Coverage functions are classic monotone submodular set functions; the test
suite checks submodularity by property-based testing.

**Array-native geometry.**  Every entry point that takes sensor locations
(``__call__``, :meth:`CoverageFunction.masks_for`, ``covered_cells``)
accepts either a sequence of :class:`Location` objects or a stacked
``(n, 2)`` float array (see :func:`repro.spatial.geometry.as_xy`).  Batch
gain states hand the allocator's shared coordinate block straight to
:meth:`masks_for`, so a slot with many region queries never materializes a
single ``Location``; the two input forms go through identical broadcasted
arithmetic and therefore produce bit-identical masks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .geometry import Location, as_xy
from .region import Region
from .trajectory import Trajectory

__all__ = [
    "CoverageFunction",
    "AreaCoverage",
    "WeightedCoverage",
    "TrajectoryCoverage",
    "masks_for_xy",
]


def masks_for_xy(fn: "CoverageFunction", xy: np.ndarray) -> np.ndarray:
    """``fn.masks_for`` over stacked coordinates, tolerating legacy overrides.

    The allocator hot path feeds ``(n, 2)`` arrays straight to
    :meth:`CoverageFunction.masks_for`.  Every implementation in this
    module (including the base fallback) accepts them natively; a user
    subclass that overrode ``masks_for`` against the historical
    ``Sequence[Location]`` signature gets ``Location`` objects built for
    it here instead of crashing on array rows.  The two forms stack to the
    same coordinates, so results are identical either way.
    """
    owner = next(c for c in type(fn).__mro__ if "masks_for" in c.__dict__)
    if owner.__module__ == __name__:
        return fn.masks_for(xy)
    return fn.masks_for([Location(float(x), float(y)) for x, y in xy])


class CoverageFunction:
    """Interface: map a set of sensor locations to a coverage in ``[0, 1]``.

    ``sensor_locations`` arguments accept ``Sequence[Location]`` or a
    stacked ``(n, 2)`` array everywhere (the module docstring's array-native
    contract).  Implementors must rasterize their domain into a fixed cell
    order (:attr:`cell_count` cells) at construction time; all masks index
    into that order.
    """

    def __call__(self, sensor_locations) -> float:
        raise NotImplementedError

    def mask_for(self, location: Location) -> np.ndarray:
        """Boolean mask over the function's cells covered by one sensor.

        Greedy allocators accumulate these masks to evaluate coverage
        marginals in O(#cells) instead of recomputing the full coverage.
        """
        raise NotImplementedError

    def masks_for(self, locations) -> np.ndarray:
        """Stacked per-sensor masks, shape ``(len(locations), cell_count)``.

        Row ``i`` equals ``mask_for(locations[i])``; batch-gain states build
        this matrix once per allocator call and evaluate every candidate's
        coverage delta with a single boolean pass.  ``locations`` may be a
        ``(n, 2)`` coordinate array (the allocator hot path — no
        ``Location`` objects are built) or a ``Location`` sequence.

        **Scalar fallback contract:** the default implementation loops over
        :meth:`mask_for`, so a custom function only ever needs the scalar
        method to be correct; the built-in rasterized functions override
        with a single broadcasted pass whose rows are bit-identical to the
        scalar loop's.
        """
        xy = as_xy(locations)
        if len(xy) == 0:
            return np.zeros((0, self.cell_count), dtype=bool)
        return np.stack(
            [self.mask_for(Location(float(x), float(y))) for x, y in xy]
        )

    @property
    def cell_count(self) -> int:
        """Number of rasterized cells/points behind the function."""
        raise NotImplementedError


def _distance_matrix(cells: np.ndarray, sensor_locations) -> np.ndarray:
    """``(n_cells, n_sensors)`` distances, the shared mask-building pass.

    ``sensor_locations`` is either a ``Location`` sequence or an ``(n, 2)``
    array; both stack to the same coordinates, so the broadcasted distances
    are bit-identical across input forms.
    """
    sensors = as_xy(sensor_locations)
    diff = cells[:, None, :] - sensors[None, :, :]
    return np.sqrt((diff**2).sum(axis=2))


def _cover_matrix(cells: np.ndarray, sensor_locations, sensing_range: float) -> np.ndarray:
    """Boolean vector: cell i is within ``sensing_range`` of some sensor."""
    if len(sensor_locations) == 0 or cells.size == 0:
        return np.zeros(len(cells), dtype=bool)
    return (_distance_matrix(cells, sensor_locations) <= sensing_range).any(axis=1)


def _mask_matrix(cells: np.ndarray, sensor_locations, sensing_range: float) -> np.ndarray:
    """``(n_sensors, n_cells)`` stacked masks — one :func:`_cover_matrix`
    column per sensor, computed in a single broadcasted pass."""
    if len(sensor_locations) == 0 or cells.size == 0:
        return np.zeros((len(sensor_locations), len(cells)), dtype=bool)
    return (_distance_matrix(cells, sensor_locations) <= sensing_range).T


@dataclass
class AreaCoverage(CoverageFunction):
    """Fraction of ``region`` grid-cell centres covered by the sensors.

    ``cell_size`` controls rasterization fidelity; the paper's regions are
    already integer grids so the default of one cell per grid unit is exact.
    """

    region: Region
    sensing_range: float
    cell_size: float = 1.0
    _cells: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.sensing_range <= 0:
            raise ValueError("sensing_range must be positive")
        self._cells = np.asarray(
            [(c.x, c.y) for c in self.region.grid_cells(self.cell_size)], dtype=float
        )

    @property
    def n_cells(self) -> int:
        return len(self._cells)

    def covered_cells(self, sensor_locations) -> int:
        return int(_cover_matrix(self._cells, sensor_locations, self.sensing_range).sum())

    def __call__(self, sensor_locations) -> float:
        if self.n_cells == 0:
            return 0.0
        return self.covered_cells(sensor_locations) / self.n_cells

    def mask_for(self, location: Location) -> np.ndarray:
        return _cover_matrix(self._cells, [location], self.sensing_range)

    def masks_for(self, locations) -> np.ndarray:
        return _mask_matrix(self._cells, locations, self.sensing_range)

    @property
    def cell_count(self) -> int:
        return self.n_cells


@dataclass
class WeightedCoverage(CoverageFunction):
    """Importance-weighted coverage over ``region``.

    ``weight_fn`` assigns a non-negative importance to each cell centre
    (e.g. population density); coverage is the covered fraction of total
    importance.  With a constant weight this reduces to :class:`AreaCoverage`.
    """

    region: Region
    sensing_range: float
    weight_fn: Callable[[Location], float]
    cell_size: float = 1.0
    _cells: np.ndarray = field(init=False, repr=False)
    _weights: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.sensing_range <= 0:
            raise ValueError("sensing_range must be positive")
        centres = list(self.region.grid_cells(self.cell_size))
        self._cells = np.asarray([(c.x, c.y) for c in centres], dtype=float)
        self._weights = np.asarray([self.weight_fn(c) for c in centres], dtype=float)
        if (self._weights < 0).any():
            raise ValueError("cell weights must be non-negative")

    def __call__(self, sensor_locations) -> float:
        total = self._weights.sum()
        if total == 0:
            return 0.0
        covered = _cover_matrix(self._cells, sensor_locations, self.sensing_range)
        return float(self._weights[covered].sum() / total)

    def mask_for(self, location: Location) -> np.ndarray:
        return _cover_matrix(self._cells, [location], self.sensing_range)

    def masks_for(self, locations) -> np.ndarray:
        return _mask_matrix(self._cells, locations, self.sensing_range)

    @property
    def cell_count(self) -> int:
        return len(self._cells)


@dataclass
class TrajectoryCoverage(CoverageFunction):
    """Fraction of trajectory sample points within sensing range.

    Reduces a query over a trajectory (Section 2.2.3) to the aggregate-query
    machinery: the "cells" are points spaced ``spacing`` apart along the
    path.
    """

    trajectory: Trajectory
    sensing_range: float
    spacing: float = 1.0
    _cells: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.sensing_range <= 0:
            raise ValueError("sensing_range must be positive")
        points = self.trajectory.sample_points(self.spacing)
        self._cells = np.asarray([(p.x, p.y) for p in points], dtype=float)

    @property
    def n_points(self) -> int:
        return len(self._cells)

    def __call__(self, sensor_locations) -> float:
        if self.n_points == 0:
            return 0.0
        covered = _cover_matrix(self._cells, sensor_locations, self.sensing_range)
        return float(covered.sum() / self.n_points)

    def mask_for(self, location: Location) -> np.ndarray:
        return _cover_matrix(self._cells, [location], self.sensing_range)

    def masks_for(self, locations) -> np.ndarray:
        return _mask_matrix(self._cells, locations, self.sensing_range)

    @property
    def cell_count(self) -> int:
        return self.n_points
