"""The paper's random-waypoint variant (RWM dataset, Section 4.2).

The paper's RWM is a simplification of Johnson & Maltz's random waypoint
model [6]: at each slot every sensor moves from its current location "with a
speed randomly selected between zero and a sensor-specific maximum speed.
The direction of the movement is either up, down, left, or right, and is
randomly selected."  Movement is limited to the rectangular region (80x80
grids by default); maximum speeds are drawn uniformly from {4, 5} at
initialization, and sensors start spread uniformly over the region.

We also provide the classic waypoint-target variant
(:class:`WaypointMobility`) because the RNC-substitute generator builds on
it.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..dispatch import batch_hook_trusted
from ..spatial import Location, Region
from .base import MobilityModel

__all__ = ["RandomWaypointMobility", "WaypointMobility"]

_DIRECTIONS = np.asarray([(0.0, 1.0), (0.0, -1.0), (-1.0, 0.0), (1.0, 0.0)])


class RandomWaypointMobility(MobilityModel):
    """Axis-aligned random walk with per-sensor maximum speed.

    Args:
        region: the full movement rectangle (sensors are clamped inside it).
        n_sensors: population size (paper default 200 for RWM experiments).
        rng: numpy random generator; all randomness flows through it.
        max_speed_choices: per-sensor max speed is drawn uniformly from
            these (paper: ``(4, 5)``).
    """

    def __init__(
        self,
        region: Region,
        n_sensors: int,
        rng: np.random.Generator,
        max_speed_choices: Sequence[float] = (4.0, 5.0),
    ) -> None:
        if n_sensors <= 0:
            raise ValueError("n_sensors must be positive")
        if not max_speed_choices:
            raise ValueError("max_speed_choices must be non-empty")
        self._region = region
        self._rng = rng
        self._max_speeds = rng.choice(np.asarray(max_speed_choices, dtype=float), size=n_sensors)
        xs = rng.uniform(region.x_min, region.x_max, size=n_sensors)
        ys = rng.uniform(region.y_min, region.y_max, size=n_sensors)
        self._positions = np.column_stack([xs, ys])

    @property
    def n_sensors(self) -> int:
        return len(self._positions)

    @property
    def region(self) -> Region:
        return self._region

    @property
    def max_speeds(self) -> np.ndarray:
        """Per-sensor maximum speeds (read-only view)."""
        return self._max_speeds.copy()

    def locations(self) -> list[Location]:
        return [Location(float(x), float(y)) for x, y in self._positions]

    def locations_xy(self) -> np.ndarray:
        # The stacked positions themselves; advance() rebinds rather than
        # mutates, so a previously returned array stays frame-stable.
        return self._positions

    def advance(self) -> None:
        n = self.n_sensors
        speeds = self._rng.uniform(0.0, self._max_speeds)
        directions = _DIRECTIONS[self._rng.integers(0, 4, size=n)]
        self._positions = self._positions + directions * speeds[:, None]
        np.clip(
            self._positions[:, 0],
            self._region.x_min,
            self._region.x_max,
            out=self._positions[:, 0],
        )
        np.clip(
            self._positions[:, 1],
            self._region.y_min,
            self._region.y_max,
            out=self._positions[:, 1],
        )


class WaypointMobility(MobilityModel):
    """Classic random waypoint: pick a target, travel to it, pause, repeat.

    Used as the trip engine of the Nokia-campaign substitute
    (:mod:`repro.mobility.nokia`), where targets are drawn from per-sensor
    anchor points instead of uniformly.

    :meth:`advance` is loop-free: one slot is three vectorized phases
    (decrement pauses and move travellers / draw arrival pauses / assign
    new trips).  Randomness is consumed in **batched phase order** —
    ascending sensor index *within* each phase — instead of the historical
    fully interleaved per-sensor order, so traces differ from the
    pre-vectorization implementation for the same seed while the trip
    *kinematics* are positionally identical (pinned by the replay-parity
    test in ``tests/test_mobility.py``, which feeds recorded draws through
    a per-sensor reference loop).  Per-slot draw order, for parity and
    reproducibility:

    1. arrival pauses: one ``integers(0, max_pause + 1, size=k)`` batch for
       the sensors that reach their target this slot, ascending index;
    2. trip targets: one :meth:`sample_targets` batch for the sensors
       starting a new trip (pause just expired, or arrived and drew pause
       0), ascending index;
    3. trip speeds: one ``uniform(min_speed, max_speed, size=m)`` batch for
       the same sensors.
    """

    def __init__(
        self,
        region: Region,
        n_sensors: int,
        rng: np.random.Generator,
        min_speed: float = 1.0,
        max_speed: float = 5.0,
        max_pause: int = 3,
    ) -> None:
        if n_sensors <= 0:
            raise ValueError("n_sensors must be positive")
        if not (0 < min_speed <= max_speed):
            raise ValueError("need 0 < min_speed <= max_speed")
        if max_pause < 0:
            raise ValueError("max_pause must be non-negative")
        self._region = region
        self._rng = rng
        self._min_speed = min_speed
        self._max_speed = max_speed
        self._max_pause = max_pause
        xs = rng.uniform(region.x_min, region.x_max, size=n_sensors)
        ys = rng.uniform(region.y_min, region.y_max, size=n_sensors)
        self._positions = np.column_stack([xs, ys])
        self._targets = self._positions.copy()
        self._speeds = np.zeros(n_sensors)
        self._pauses = np.zeros(n_sensors, dtype=int)
        self._assign_trips(np.arange(n_sensors, dtype=np.intp))

    @property
    def n_sensors(self) -> int:
        return len(self._positions)

    @property
    def region(self) -> Region:
        return self._region

    def locations(self) -> list[Location]:
        return [Location(float(x), float(y)) for x, y in self._positions]

    def locations_xy(self) -> np.ndarray:
        # Read-only view of the live position buffer (advance() mutates it
        # in place) — consumers must copy before storing, as documented on
        # MobilityModel.locations_xy.
        return self._positions

    def sample_target(self, index: int) -> Location:
        """Next trip destination for sensor ``index``; uniform by default.

        Kept for subclasses that only customize the scalar form —
        :meth:`_assign_trips` falls back to a per-sensor loop over this
        method when it is overridden without :meth:`sample_targets`.
        """
        return self._region.sample_location(self._rng)

    def sample_targets(self, indices: np.ndarray) -> np.ndarray:
        """Next trip destinations for ``indices`` as an ``(k, 2)`` array.

        The batched counterpart of :meth:`sample_target` (uniform by
        default, drawn as one x batch then one y batch); subclasses bias
        destinations here (e.g. towards home/work anchors in the Nokia
        substitute).
        """
        xs = self._rng.uniform(self._region.x_min, self._region.x_max, size=len(indices))
        ys = self._rng.uniform(self._region.y_min, self._region.y_max, size=len(indices))
        return np.column_stack([xs, ys])

    def advance(self) -> None:
        pauses = self._pauses
        pausing = pauses > 0
        pauses[pausing] -= 1

        # Travellers move toward their targets; arrivals snap onto them.
        moving = ~pausing
        delta = self._targets - self._positions
        dist = np.hypot(delta[:, 0], delta[:, 1])
        arrived = moving & (dist <= self._speeds)
        cruising = moving & ~arrived
        if cruising.any():
            # Same float grouping as the historical per-sensor step
            # (``pos + delta / dist * step``), element for element.
            step = (
                delta[cruising]
                / dist[cruising][:, None]
                * self._speeds[cruising][:, None]
            )
            self._positions[cruising] += step
        if arrived.any():
            idx = np.flatnonzero(arrived)
            self._positions[idx] = self._targets[idx]
            pauses[idx] = self._rng.integers(0, self._max_pause + 1, size=len(idx))

        # New trips: expired pauses plus arrivals that drew pause 0.
        needs_trip = np.flatnonzero((pausing | arrived) & (pauses == 0))
        if len(needs_trip):
            self._assign_trips(needs_trip)

    def _assign_trips(self, indices: np.ndarray) -> None:
        """Draw targets then speeds for ``indices`` (one batch each).

        A subclass that customized only the scalar :meth:`sample_target`
        is honoured (:func:`repro.dispatch.batch_hook_trusted`): the
        batched hook is used only when its defining class sits at or below
        the scalar hook's in the MRO — this covers subclasses of
        intermediate models like the Nokia synthesizer, not just direct
        ``WaypointMobility`` children.
        """
        if not batch_hook_trusted(type(self), "sample_targets", ("sample_target",)):
            targets = np.asarray(
                [tuple(self.sample_target(int(i))) for i in indices], dtype=float
            ).reshape(-1, 2)
        else:
            targets = self.sample_targets(indices)
        self._targets[indices] = targets
        self._speeds[indices] = self._rng.uniform(
            self._min_speed, self._max_speed, size=len(indices)
        )
