"""The sensor entity and its per-slot announcement snapshot.

"We use the term *sensor* to refer to the actual sensor on the sensing
device, the sensing device, or even the combination of the participant and
the sensing device she carries" (Section 2).  A :class:`Sensor` bundles the
static attributes (inaccuracy, trust, price model, privacy sensitivity,
lifetime) with the mutable usage state (readings taken, reporting history).

Allocators never touch :class:`Sensor` directly: each slot the fleet
publishes immutable :class:`SensorSnapshot` announcements (id, location,
price, quality attributes), mirroring the protocol of Section 2.1 where
sensors "announce their location and price" at the beginning of each slot.

Since the array-backed fleet redesign these classes are the *scalar
reference* of the slot protocol, not its hot path: the fleet keeps the
population in a :class:`~repro.sensors.state.FleetState` (structure of
arrays) and announces via :class:`~repro.sensors.state.AnnouncementBatch`,
whose vectorized eq.-8 arithmetic is pinned bit-identical to
:meth:`Sensor.announce_cost` by ``tests/test_fleet_batch_parity.py``.
:meth:`SensorFleet.sensors <repro.sensors.SensorFleet.sensors>`
materializes :class:`Sensor` objects as read-only views over the arrays,
and batch rows materialize as :class:`SensorSnapshot` lazily.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..spatial import Location
from .costs import (
    EnergyCostModel,
    FixedEnergyCost,
    PrivacyCostModel,
)

__all__ = ["Sensor", "SensorSnapshot"]


@dataclass(frozen=True)
class SensorSnapshot:
    """One sensor's announcement for the current time slot.

    This is the *only* sensor view the allocation algorithms receive; it is
    frozen so an allocator cannot accidentally mutate fleet state.
    """

    sensor_id: int
    location: Location
    cost: float
    inaccuracy: float
    trust: float

    def __post_init__(self) -> None:
        if self.cost < 0:
            raise ValueError("announced cost must be non-negative")
        if not (0.0 <= self.inaccuracy <= 1.0):
            raise ValueError("inaccuracy must be in [0, 1]")
        if not (0.0 <= self.trust <= 1.0):
            raise ValueError("trust must be in [0, 1]")


@dataclass
class Sensor:
    """A participant's sensing device.

    Attributes:
        sensor_id: stable identifier (index into the mobility model).
        inaccuracy: gamma_s in [0, 1] — percentage of the value range
            (Section 4.1 draws it from [0, 0.2]).
        trust: tau_s in [0, 1], fixed for the simulation (Section 4.1).
        lifetime: maximum number of readings the sensor can provide; once
            exhausted it "cannot be used anymore in the subsequent time
            slots" (Section 4.1).
        energy_model / privacy_model: the eq. 8 price components.
    """

    sensor_id: int
    inaccuracy: float = 0.0
    trust: float = 1.0
    lifetime: int = 50
    energy_model: EnergyCostModel = field(default_factory=FixedEnergyCost)
    privacy_model: PrivacyCostModel = field(default_factory=PrivacyCostModel)
    readings_taken: int = 0
    report_history: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not (0.0 <= self.inaccuracy <= 1.0):
            raise ValueError("inaccuracy must be in [0, 1]")
        if not (0.0 <= self.trust <= 1.0):
            raise ValueError("trust must be in [0, 1]")
        if self.lifetime < 1:
            raise ValueError("lifetime must be >= 1")

    # ------------------------------------------------------------------
    # energy / lifetime
    # ------------------------------------------------------------------
    @property
    def remaining_energy(self) -> float:
        """Remaining energy fraction ``E_s = 1 - readings/lifetime``.

        Ties the abstract energy state of eq. 8 to the experiment's lifetime
        counter: a fresh sensor has E = 1; an exhausted one E = 0, at which
        point the linear energy model reaches its maximum price and the
        fleet stops announcing the sensor altogether.
        """
        return max(0.0, 1.0 - self.readings_taken / self.lifetime)

    @property
    def is_exhausted(self) -> bool:
        return self.readings_taken >= self.lifetime

    # ------------------------------------------------------------------
    # announcements and usage
    # ------------------------------------------------------------------
    def announce_cost(self, now: int) -> float:
        """Price for providing one measurement at slot ``now`` (eq. 8)."""
        energy = self.energy_model(self.remaining_energy)
        privacy = self.privacy_model(self.report_history, now)
        return energy + privacy

    def snapshot(self, location: Location, now: int) -> SensorSnapshot:
        """The announcement for slot ``now`` at the given location."""
        return SensorSnapshot(
            sensor_id=self.sensor_id,
            location=location,
            cost=self.announce_cost(now),
            inaccuracy=self.inaccuracy,
            trust=self.trust,
        )

    def record_measurement(self, now: int) -> None:
        """Account one provided reading: lifetime, energy and privacy history.

        Raises:
            RuntimeError: if the sensor is already exhausted — the fleet
                must never select a worn-out sensor.
        """
        if self.is_exhausted:
            raise RuntimeError(f"sensor {self.sensor_id} is exhausted")
        self.readings_taken += 1
        self.report_history.append(now)
        self._prune_history(now)

    def _prune_history(self, now: int) -> None:
        window = self.privacy_model.window
        self.report_history = [t for t in self.report_history if now - t <= window]
