"""Figure 6: random privacy sensitivity + linear energy cost, lifetime 50/25.

The paper's findings: utility and satisfaction drop relative to the
zero-privacy fixed-cost setting (Figure 3), and halving the lifetime
changes little because mobility churn keeps individual sensors from being
exhausted.
"""

from __future__ import annotations

from conftest import run_once
from repro.experiments import fig3, fig6, format_figure


def test_fig6_privacy_and_energy_costs(benchmark, scale):
    result = run_once(benchmark, fig6, scale)
    print()
    print(format_figure(result))

    reference = fig3(scale)
    for i in range(len(result.x_values)):
        # Privacy + energy costs can only depress utility vs Figure 3.
        assert (
            result.metric("Optimal", "avg_utility_l50")[i]
            <= reference.metric("Optimal", "avg_utility")[i] + 1e-6
        )
    # Lifetime 25 vs 50: "the difference ... is very small".
    l50 = result.metric("Optimal", "avg_utility_l50")
    l25 = result.metric("Optimal", "avg_utility_l25")
    for a, b in zip(l50, l25):
        if a > 0:
            assert abs(a - b) <= 0.35 * a
    assert result.dominates("Optimal", "Baseline", "avg_utility_l50", slack=1e-9)
    assert result.dominates("Optimal", "Baseline", "avg_utility_l25", slack=1e-9)
