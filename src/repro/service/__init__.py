"""The streaming marketplace service: async slot ticker + admission control.

The long-running facade over :class:`~repro.core.engine.SlotEngine` — see
:mod:`repro.service.marketplace` for the service and the parity contract,
:mod:`repro.service.metrics` for the SLO observability layer, and
:mod:`repro.service.loadgen` for the open-loop arrival generators.
"""

from .loadgen import (
    ArrivalProfile,
    BurstyProfile,
    LoadGenerator,
    PoissonProfile,
    WorkloadArrivals,
    profile_from_payload,
)
from .marketplace import (
    REJECT_NOT_ACCEPTING,
    REJECT_QUEUE_FULL,
    AdmissionStream,
    AdmissionTrace,
    AdmittedSlot,
    MarketplaceService,
    RecordedAdmissionStream,
    ServiceConfig,
    Ticket,
    replay_admission_trace,
    service_engine,
)
from .metrics import (
    LatencyHistogram,
    ServiceMetrics,
    SlotMetrics,
    phase_totals,
    summary_payload,
)

__all__ = [
    "REJECT_QUEUE_FULL",
    "REJECT_NOT_ACCEPTING",
    "Ticket",
    "ServiceConfig",
    "AdmissionStream",
    "RecordedAdmissionStream",
    "AdmittedSlot",
    "AdmissionTrace",
    "MarketplaceService",
    "service_engine",
    "replay_admission_trace",
    "ArrivalProfile",
    "PoissonProfile",
    "BurstyProfile",
    "profile_from_payload",
    "WorkloadArrivals",
    "LoadGenerator",
    "LatencyHistogram",
    "SlotMetrics",
    "ServiceMetrics",
    "phase_totals",
    "summary_payload",
]
