"""Tests for the sequential baseline allocator (Sections 4.3/4.4)."""

from __future__ import annotations

import pytest

from helpers import make_point_query, make_snapshot, random_instance
from repro.core import BaselineAllocator, OptimalPointAllocator
from repro.queries import SpatialAggregateQuery
from repro.spatial import Region


class TestBaselinePointBehaviour:
    def test_cannot_share_costs(self):
        """The defining weakness: two queries that could jointly afford a
        sensor both fail individually."""
        queries = [
            make_point_query(x=0, y=0, budget=7.0, query_id="a", theta_min=0.0),
            make_point_query(x=0, y=0, budget=7.0, query_id="b", theta_min=0.0),
        ]
        sensor = make_snapshot(0, x=0, y=0, cost=10.0)
        result = BaselineAllocator().allocate(queries, [sensor])
        assert result.answered_count() == 0

    def test_first_query_pays_rest_ride_free(self):
        queries = [
            make_point_query(x=0, y=0, budget=20.0, query_id="a", theta_min=0.0),
            make_point_query(x=0, y=0, budget=20.0, query_id="b", theta_min=0.0),
        ]
        sensor = make_snapshot(0, x=0, y=0, cost=10.0)
        result = BaselineAllocator().allocate(queries, [sensor])
        assert result.answered_count() == 2
        assert result.query_payment("a") == pytest.approx(10.0)
        assert result.query_payment("b") == pytest.approx(0.0)

    def test_colocation_sharing_can_be_disabled(self):
        queries = [
            make_point_query(x=0, y=0, budget=20.0, query_id="a", theta_min=0.0),
            make_point_query(x=0, y=0, budget=20.0, query_id="b", theta_min=0.0),
        ]
        sensor = make_snapshot(0, x=0, y=0, cost=10.0)
        result = BaselineAllocator(share_colocated=False).allocate(queries, [sensor])
        # q_b still answers through the zero-effective-cost path, but both
        # were processed independently.
        assert result.answered_count() == 2
        assert result.query_payment("b") == pytest.approx(0.0)

    def test_picks_max_utility_sensor(self):
        query = make_point_query(x=0, y=0, budget=20.0, theta_min=0.0)
        low_net = make_snapshot(0, x=4, y=0, cost=1.0)
        high_net = make_snapshot(1, x=0, y=0, cost=5.0)
        result = BaselineAllocator().allocate([query], [low_net, high_net])
        assert result.assignments[query.query_id] == (1,)

    def test_never_better_than_optimal(self):
        for seed in range(10):
            queries, sensors = random_instance(seed, n_sensors=8, n_queries=10)
            baseline = BaselineAllocator().allocate(queries, sensors)
            optimal = OptimalPointAllocator().allocate(queries, sensors)
            assert baseline.total_utility <= optimal.total_utility + 1e-9

    def test_invariants(self):
        for seed in range(5):
            queries, sensors = random_instance(seed, n_sensors=10, n_queries=15)
            BaselineAllocator().allocate(queries, sensors).verify()

    def test_empty_inputs(self):
        assert BaselineAllocator().allocate([], []).total_utility == 0.0

    def test_min_gain_validation(self):
        with pytest.raises(ValueError):
            BaselineAllocator(min_gain=-0.1)


class TestBaselineAggregateBehaviour:
    REGION = Region.from_origin(20, 20)

    def _aggregate(self, budget=60.0, query_id=None):
        return SpatialAggregateQuery(
            Region(5, 5, 15, 15), budget=budget, sensing_range=6.0,
            coverage_radius=4.0, query_id=query_id,
        )

    def test_grows_set_greedily(self):
        query = self._aggregate(budget=200.0)
        sensors = [
            make_snapshot(0, x=7, y=7, cost=5.0),
            make_snapshot(1, x=13, y=13, cost=5.0),
        ]
        result = BaselineAllocator().allocate([query], sensors)
        assert len(result.assignments[query.query_id]) == 2

    def test_later_query_reuses_selected_sensor_free(self):
        q1 = self._aggregate(budget=200.0, query_id="first")
        q2 = self._aggregate(budget=200.0, query_id="second")
        sensor = make_snapshot(0, x=10, y=10, cost=8.0)
        result = BaselineAllocator().allocate([q1, q2], [sensor])
        assert result.query_payment("first") == pytest.approx(8.0)
        assert result.query_payment("second") == pytest.approx(0.0)
        assert result.sensor_income(0) == pytest.approx(8.0)

    def test_stops_on_quality_dilution(self):
        """eq. 5 is non-monotone: the baseline must not add a sensor whose
        dilution outweighs its coverage."""
        query = self._aggregate(budget=100.0)
        good = make_snapshot(0, x=10, y=10, cost=1.0, trust=1.0)
        junk = make_snapshot(1, x=10.2, y=10, cost=1.0, trust=0.01)
        result = BaselineAllocator().allocate([query], [good, junk])
        assert result.assignments[query.query_id] == (0,)
