"""Clairvoyant reference for the long-horizon problem (eq. 1).

The paper formulates the ideal objective — choose sensor allocations over
the *whole* period ``T`` knowing every future query, location and price —
and immediately argues it cannot be solved in practice (queries arrive
online, mobility is uncontrolled, prices change), motivating the myopic
per-slot objective (eq. 2) everything else in the library optimizes.

For *tiny* instances the ideal is still computable, and that makes it a
valuable reference: the gap between the myopic schedule and the clairvoyant
one measures what the paper's simplification costs.  Two couplings make
eq. 1 differ from a sequence of independent slots, and both are modelled
here:

* **lifetime**: a sensor used now cannot be used after its reading budget
  is exhausted;
* **privacy-history pricing**: a report at slot ``t`` raises the sensor's
  eq. 14 privacy loss (and hence its price) in the following window.

The solver enumerates, slot by slot, every subset of per-slot winners via
depth-first search over sensor-usage states — exponential, guarded by an
explicit size limit, and meant for tests and the myopic-gap ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..queries import PointQuery
from ..sensors import Sensor, SensorSnapshot
from ..spatial import Location
from .point_problem import PointProblem
from .valuation import ValuationKernel

__all__ = ["ClairvoyantPlan", "solve_clairvoyant", "simulate_myopic_gap"]


@dataclass(frozen=True)
class ClairvoyantPlan:
    """Optimal multi-slot schedule for a frozen tiny instance."""

    total_utility: float
    per_slot_selected: tuple[tuple[int, ...], ...]  # sensor ids per slot


@dataclass
class _World:
    """Frozen multi-slot instance: everything eq. 1 assumes is known."""

    queries_per_slot: list[list[PointQuery]]
    positions_per_slot: list[list[Location]]
    sensors: list[Sensor]

    @property
    def n_slots(self) -> int:
        return len(self.queries_per_slot)


def _snapshots_for(
    world: _World, t: int, readings_used: tuple[int, ...], histories: tuple[tuple[int, ...], ...]
) -> list[SensorSnapshot]:
    snapshots = []
    for i, sensor in enumerate(world.sensors):
        if readings_used[i] >= sensor.lifetime:
            continue
        energy = max(0.0, 1.0 - readings_used[i] / sensor.lifetime)
        cost = sensor.energy_model(energy) + sensor.privacy_model(histories[i], t)
        snapshots.append(
            SensorSnapshot(
                sensor_id=i,
                location=world.positions_per_slot[t][i],
                cost=cost,
                inaccuracy=sensor.inaccuracy,
                trust=sensor.trust,
            )
        )
    return snapshots


def _slot_candidates(
    queries: list[PointQuery],
    snapshots: list[SensorSnapshot],
    kernel: ValuationKernel | None = None,
):
    """All (selected-subset, utility) pairs worth considering in one slot."""
    if not queries or not snapshots:
        yield (), 0.0
        return
    problem = PointProblem.build(queries, snapshots, kernel=kernel)
    n = problem.n_sensors
    import itertools

    for size in range(0, n + 1):
        for combo in itertools.combinations(range(n), size):
            mask = np.zeros(n, dtype=bool)
            mask[list(combo)] = True
            utility = problem.utility(mask) if size else 0.0
            sensor_ids = tuple(problem.sensors[c].sensor_id for c in combo)
            yield sensor_ids, float(utility)


def solve_clairvoyant(
    queries_per_slot: Sequence[Sequence[PointQuery]],
    positions_per_slot: Sequence[Sequence[Location]],
    sensors: Sequence[Sensor],
    max_sensors: int = 6,
    max_slots: int = 5,
) -> ClairvoyantPlan:
    """Exact eq. 1 optimum by exhaustive search over per-slot selections.

    Raises:
        ValueError: when the instance exceeds the tractability guard.
    """
    if len(sensors) > max_sensors:
        raise ValueError(f"clairvoyant search limited to {max_sensors} sensors")
    if len(queries_per_slot) > max_slots:
        raise ValueError(f"clairvoyant search limited to {max_slots} slots")
    if len(queries_per_slot) != len(positions_per_slot):
        raise ValueError("queries and positions must cover the same slots")
    world = _World(
        [list(q) for q in queries_per_slot],
        [list(p) for p in positions_per_slot],
        list(sensors),
    )

    best_utility = -np.inf
    best_plan: tuple[tuple[int, ...], ...] = ()
    # The DFS revisits the same (slot, alive-sensor set) exponentially often
    # with different price histories; the value arrays depend only on
    # positions/gamma/trust, so one kernel per membership serves them all.
    kernel_cache: dict[tuple[int, tuple[int, ...]], ValuationKernel] = {}

    def recurse(
        t: int,
        readings_used: tuple[int, ...],
        histories: tuple[tuple[int, ...], ...],
        acc_utility: float,
        chosen: tuple[tuple[int, ...], ...],
    ) -> None:
        nonlocal best_utility, best_plan
        if t == world.n_slots:
            if acc_utility > best_utility:
                best_utility, best_plan = acc_utility, chosen
            return
        snapshots = _snapshots_for(world, t, readings_used, histories)
        key = (t, tuple(s.sensor_id for s in snapshots))
        kernel = kernel_cache.get(key)
        if kernel is None and snapshots:
            kernel = kernel_cache[key] = ValuationKernel.from_sensors(snapshots)
        for selected, slot_utility in _slot_candidates(world.queries_per_slot[t], snapshots, kernel):
            new_used = list(readings_used)
            new_hist = [list(h) for h in histories]
            for sid in selected:
                new_used[sid] += 1
                new_hist[sid].append(t)
            recurse(
                t + 1,
                tuple(new_used),
                tuple(tuple(h) for h in new_hist),
                acc_utility + slot_utility,
                chosen + (selected,),
            )

    recurse(
        0,
        tuple(0 for _ in sensors),
        tuple(() for _ in sensors),
        0.0,
        (),
    )
    return ClairvoyantPlan(float(best_utility), best_plan)


def simulate_myopic_gap(
    queries_per_slot: Sequence[Sequence[PointQuery]],
    positions_per_slot: Sequence[Sequence[Location]],
    sensors: Sequence[Sensor],
    myopic_allocator,
) -> tuple[float, float]:
    """Run the myopic policy on the frozen world; return (myopic, optimal).

    The myopic side replays the exact slot protocol: announce at current
    history/energy, allocate with ``myopic_allocator``, book measurements.
    """
    import copy

    plan = solve_clairvoyant(queries_per_slot, positions_per_slot, sensors)
    world_sensors = [copy.deepcopy(s) for s in sensors]
    world = _World(
        [list(q) for q in queries_per_slot],
        [list(p) for p in positions_per_slot],
        world_sensors,
    )
    myopic_total = 0.0
    for t in range(world.n_slots):
        used = tuple(s.readings_taken for s in world_sensors)
        hist = tuple(tuple(s.report_history) for s in world_sensors)
        snapshots = _snapshots_for(world, t, used, hist)
        result = myopic_allocator.allocate(world.queries_per_slot[t], snapshots)
        myopic_total += result.total_utility
        for sid in result.selected:
            world_sensors[sid].record_measurement(t)
    return myopic_total, plan.total_utility
