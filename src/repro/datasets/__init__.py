"""Scenario builders: frozen, reproducible worlds per dataset (Section 4.2)."""

from .intel import IntelScenario, build_intel_scenario
from .ozone import OzoneDataset, build_ozone_dataset
from .rnc import build_rnc_scenario
from .rwm import RWM_REGION, RWM_WORKING_REGION, build_rwm_scenario
from .scenario import Scenario, ScenarioSpec, StreamSpec

__all__ = [
    "Scenario",
    "ScenarioSpec",
    "StreamSpec",
    "build_rwm_scenario",
    "build_rnc_scenario",
    "build_intel_scenario",
    "IntelScenario",
    "build_ozone_dataset",
    "OzoneDataset",
    "RWM_REGION",
    "RWM_WORKING_REGION",
]
