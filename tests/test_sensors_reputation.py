"""Tests for the Beta-reputation trust assessment substrate."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sensors import BetaReputationTracker, ReputationRecord


class TestReputationRecord:
    def test_uniform_prior_trust(self):
        assert ReputationRecord().trust == pytest.approx(0.5)

    def test_trusted_prior(self):
        assert ReputationRecord(alpha=9, beta=1).trust == pytest.approx(0.9)

    def test_observation_count(self):
        record = ReputationRecord(alpha=3, beta=2)
        assert record.observations == pytest.approx(3.0)


class TestTracker:
    def test_agreement_raises_trust(self):
        tracker = BetaReputationTracker(tolerance=1.0, forgetting=1.0)
        before = tracker.trust_of(0)
        after = tracker.observe(0, reading=10.0, reference=10.5)
        assert after > before

    def test_disagreement_lowers_trust(self):
        tracker = BetaReputationTracker(tolerance=1.0, forgetting=1.0)
        before = tracker.trust_of(0)
        after = tracker.observe(0, reading=10.0, reference=20.0)
        assert after < before

    def test_trust_converges_for_honest_sensor(self):
        tracker = BetaReputationTracker(tolerance=0.5, forgetting=1.0)
        for _ in range(100):
            tracker.observe(0, 10.0, 10.0)
        assert tracker.trust_of(0) > 0.95

    def test_trust_converges_for_faulty_sensor(self):
        tracker = BetaReputationTracker(tolerance=0.5, forgetting=1.0)
        for _ in range(100):
            tracker.observe(0, 50.0, 10.0)
        assert tracker.trust_of(0) < 0.05

    def test_forgetting_lets_compromised_sensor_fall_fast(self):
        slow = BetaReputationTracker(tolerance=0.5, forgetting=1.0)
        fast = BetaReputationTracker(tolerance=0.5, forgetting=0.9)
        for tracker in (slow, fast):
            for _ in range(100):
                tracker.observe(0, 10.0, 10.0)  # long honest history
            for _ in range(10):
                tracker.observe(0, 50.0, 10.0)  # then compromised
        assert fast.trust_of(0) < slow.trust_of(0)

    def test_redundant_scoring_demotes_outlier(self):
        tracker = BetaReputationTracker(tolerance=1.0, forgetting=1.0)
        for _ in range(20):
            tracker.observe_redundant({1: 10.0, 2: 10.2, 3: 9.9, 4: 30.0})
        snapshot = tracker.snapshot()
        assert snapshot[4] < 0.3
        assert min(snapshot[1], snapshot[2], snapshot[3]) > 0.7

    def test_redundant_needs_three(self):
        tracker = BetaReputationTracker()
        with pytest.raises(ValueError):
            tracker.observe_redundant({1: 1.0, 2: 2.0})

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BetaReputationTracker(prior_alpha=0.0)
        with pytest.raises(ValueError):
            BetaReputationTracker(tolerance=-1.0)
        with pytest.raises(ValueError):
            BetaReputationTracker(forgetting=0.0)

    @given(st.lists(st.booleans(), min_size=1, max_size=60))
    @settings(max_examples=40)
    def test_trust_always_in_unit_interval(self, agreements):
        tracker = BetaReputationTracker(tolerance=0.5, forgetting=0.95)
        for agrees in agreements:
            tracker.observe(0, 0.0, 0.0 if agrees else 10.0)
            assert 0.0 < tracker.trust_of(0) < 1.0

    def test_end_to_end_with_field(self):
        """Honest vs noisy sensors measured against a synthetic field."""
        from repro.phenomena import CorrelatedField
        from repro.spatial import Location

        rng = np.random.default_rng(0)
        field = CorrelatedField(rng)
        tracker = BetaReputationTracker(tolerance=0.5, forgetting=1.0)
        loc = Location(5.5, 5.5)
        truth = field.value_at(loc)
        for _ in range(50):
            tracker.observe(0, field.reading(loc, 0.01, rng), truth)  # honest
            tracker.observe(1, field.reading(loc, 0.01, rng) + 5.0, truth)  # biased
        assert tracker.trust_of(0) > 0.8
        assert tracker.trust_of(1) < 0.2
