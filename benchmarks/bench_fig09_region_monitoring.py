"""Figure 9: region monitoring — Algorithm 3 vs Baseline on the Intel field.

The paper's findings: Algorithm 3 (cost weighting + shared-sensor reuse +
optimal point scheduling) clearly outperforms the baseline; quality of
results grows with the budget factor and can exceed 1 thanks to sensors
shared from co-located queries.
"""

from __future__ import annotations

from conftest import run_once
from repro.experiments import fig9, format_figure


def test_fig9_region_monitoring(benchmark, scale):
    result = run_once(benchmark, fig9, scale)
    print()
    print(format_figure(result))

    assert result.dominates("Alg3", "Baseline", "avg_utility", slack=1e-9)
    assert result.dominates("Alg3", "Baseline", "avg_quality", slack=1e-9)
    # Quality rises with budget for Alg3 (more of the plan affordable).
    quality = result.metric("Alg3", "avg_quality")
    assert quality[-1] > quality[0]
