"""Baseline allocators — the comparison points of Section 4.

The paper evaluates its algorithms against "sequential execution of queries
with data buffering": queries are processed one by one in arrival order,
each grabbing whatever maximizes *its own* utility; a sensor selected once
costs nothing for the rest of the slot (its data is buffered), and a sensor
answering a query at a location also answers every other query at that
location.

One engine covers both published baselines:

* Section 4.3 (point queries): each query picks the single sensor with the
  best ``v_q(s) - c_eff(s)``.
* Section 4.4 (aggregate queries): each query greedily grows its own sensor
  set while the marginal valuation exceeds the effective cost.

because a single-sensor point query *is* a set query whose second sensor
never adds value.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..queries import PointQuery, Query
from ..sensors import SensorSnapshot
from ..sensors.state import as_announcement_sequence
from .allocation import AllocationResult, check_distinct
from .valuation import ValuationKernel

__all__ = ["BaselineAllocator"]


class BaselineAllocator:
    """Sequential per-query execution with intra-slot data buffering.

    Args:
        min_gain: numerical floor for treating a marginal as positive.
        share_colocated: give a selected sensor to every other point query
            at the same location for free (the paper's point baseline does;
            disable to measure how much that sharing contributes).
    """

    name = "Baseline"
    supports_kernel = True

    def __init__(self, min_gain: float = 1e-9, share_colocated: bool = True) -> None:
        if min_gain < 0:
            raise ValueError("min_gain must be non-negative")
        self.min_gain = min_gain
        self.share_colocated = share_colocated

    def allocate(
        self,
        queries: Sequence[Query],
        sensors: Sequence[SensorSnapshot],
        kernel: ValuationKernel | None = None,
    ) -> AllocationResult:
        check_distinct(queries, sensors)
        result = AllocationResult()
        if not queries or not len(sensors):
            return result
        # Keep an AnnouncementBatch lazy; copy only non-indexable inputs.
        sensors = as_announcement_sequence(sensors)
        kernel = ValuationKernel.ensure(kernel, sensors)

        # Vectorized Q_{l_s} prefilter + precomputed value rows for plain
        # point queries (the scalar fallback covers every other type).  A
        # sharding-capable kernel supplies per-query sparse (columns,
        # values) pairs — every omitted column is exactly zero in the
        # dense row, so the candidate sets below come out identical.
        plain = [q for q in queries if type(q) is PointQuery]
        value_rows: dict[str, np.ndarray] = {}
        sparse_rows: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        sparse_fn = getattr(kernel, "sparse_single_values", None)
        candidates_of = getattr(kernel, "candidate_indices", None)
        if plain:
            if sparse_fn is not None:
                for query, entry in zip(plain, sparse_fn(plain)):
                    sparse_rows[query.query_id] = entry
            else:
                rows = kernel.single_values(plain)
                value_rows = {q.query_id: rows[i] for i, q in enumerate(plain)}

        paid: set[int] = set()  # sensors whose cost is already covered
        answered: set[str] = set()

        for query in queries:
            if query.query_id in answered:
                continue
            state = query.new_state()
            spent_new: list[SensorSnapshot] = []
            sparse = sparse_rows.get(query.query_id)
            row = value_rows.get(query.query_id)
            if sparse is not None:
                idx, vals = sparse
                positive = vals > 0.0
                candidate_idx = idx[positive]
                candidate_vals = vals[positive]
            elif row is not None:
                candidate_idx = np.flatnonzero(row > 0.0)
                candidate_vals = row[candidate_idx]
            else:
                cand = candidates_of(query) if candidates_of is not None else None
                if cand is not None:
                    # Candidate shards only; same ascending order as the
                    # full scan, so near-tie picks cannot diverge.
                    candidate_idx = np.fromiter(
                        (j for j in cand if query.relevant(sensors[j])), np.intp
                    )
                else:
                    candidate_idx = np.fromiter(
                        (j for j, s in enumerate(sensors) if query.relevant(s)),
                        np.intp,
                    )
                candidate_vals = None
            candidates = [sensors[j] for j in candidate_idx]
            # Per-query roster: the batch state evaluates all of this
            # query's candidates in one vectorized pass per round instead
            # of one Python `state.gain` call per (round, candidate).
            roster = kernel.roster(candidate_idx, sensors)
            if candidate_vals is not None:
                roster.value_rows[query.query_id] = candidate_vals
            else:
                # The roster holds exactly this query's relevant sensors.
                roster.relevance_rows[query.query_id] = np.ones(
                    len(candidate_idx), dtype=bool
                )
            batch = state.batch(roster)
            local_indices = roster.all_indices
            chosen_ids: set[int] = set()
            while True:
                gains = batch.gain_many(local_indices) if candidates else ()
                best, best_net, best_gain = None, 0.0, 0.0
                for position, snapshot in enumerate(candidates):
                    if snapshot.sensor_id in chosen_ids:
                        continue
                    gain = float(gains[position])
                    if gain <= self.min_gain:
                        continue
                    effective_cost = 0.0 if snapshot.sensor_id in paid else snapshot.cost
                    net = gain - effective_cost
                    if net > best_net + self.min_gain:
                        best, best_net, best_gain = snapshot, net, gain
                if best is None:
                    break
                newly_paid = best.sensor_id not in paid
                payment = best.cost if newly_paid else 0.0
                state.add(best)
                chosen_ids.add(best.sensor_id)
                paid.add(best.sensor_id)
                if newly_paid:
                    spent_new.append(best)
                result.record(query, best, best_gain, payment)
            answered.add(query.query_id)

            # Point-query co-location sharing: "a sensor that is selected to
            # answer a query at a certain location is also assigned to all
            # other queries at that location" (Section 4.3).
            if self.share_colocated and isinstance(query, PointQuery) and chosen_ids:
                chosen_snapshot = next(
                    s for s in candidates if s.sensor_id in chosen_ids
                )
                for other in queries:
                    if (
                        isinstance(other, PointQuery)
                        and other.query_id not in answered
                        and other.location == query.location
                    ):
                        value = other.value_single(chosen_snapshot)
                        if value > 0.0:
                            result.record(other, chosen_snapshot, value, 0.0)
                            answered.add(other.query_id)

        result.verify()
        return result
