"""Mobility substrate: generative models and trace replay."""

from .base import MobilityModel
from .nokia import (
    PAPER_RNC_REGION,
    PAPER_RNC_WORKING_REGION,
    NokiaCampaignSynthesizer,
)
from .random_waypoint import RandomWaypointMobility, WaypointMobility
from .stationary import ChurnMobility, StationaryMobility
from .statistics import ChurnStatistics, TraceStatistics, compute_churn, compute_statistics
from .trace import MobilityTrace, TraceMobility

__all__ = [
    "MobilityModel",
    "RandomWaypointMobility",
    "WaypointMobility",
    "StationaryMobility",
    "ChurnMobility",
    "MobilityTrace",
    "TraceMobility",
    "NokiaCampaignSynthesizer",
    "TraceStatistics",
    "compute_statistics",
    "ChurnStatistics",
    "compute_churn",
    "PAPER_RNC_REGION",
    "PAPER_RNC_WORKING_REGION",
]
