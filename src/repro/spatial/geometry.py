"""Planar geometry primitives used across the participatory-sensing stack.

The paper (Riahi et al., EDBT 2013) works on griditized planar regions:
sensor locations, queried locations, rectangular query regions and
trajectories all live in a 2-D Euclidean plane whose unit is one grid cell.
This module provides the single :class:`Location` value type plus the
distance helpers every other package builds on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "Location",
    "as_xy",
    "euclidean",
    "manhattan",
    "pairwise_distances",
    "nearest",
    "centroid",
]


def as_xy(points) -> np.ndarray:
    """Canonical ``(n, 2)`` float coordinate array of a point collection.

    The batch-geometry protocol (``Query.relevant_mask``,
    ``CoverageFunction.masks_for``) runs on stacked coordinate arrays; this
    is the single adapter every entry point shares.  An existing float
    ``(n, 2)`` array is adopted **as-is** (no copy — callers must treat the
    result as read-only); any other input is interpreted as a sequence of
    :class:`Location`-likes (objects with ``.x``/``.y``) and stacked.  An
    empty sequence yields a ``(0, 2)`` array so downstream broadcasting
    never special-cases emptiness.
    """
    if isinstance(points, np.ndarray):
        if points.ndim != 2 or (points.size and points.shape[1] != 2):
            raise ValueError(f"coordinate array must have shape (n, 2), got {points.shape}")
        if points.dtype != np.float64:
            return points.astype(float)
        return points
    return np.asarray([(p.x, p.y) for p in points], dtype=float).reshape(-1, 2)


@dataclass(frozen=True, order=True)
class Location:
    """A point in the sensing plane, in grid-cell units.

    Instances are immutable and hashable so they can key dictionaries of
    per-location query groups (the BILP of Section 3.1.1 groups point
    queries by queried location).
    """

    x: float
    y: float

    def distance_to(self, other: "Location") -> float:
        """Euclidean distance to ``other`` in grid units."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def manhattan_to(self, other: "Location") -> float:
        """L1 distance to ``other`` — used by axis-aligned mobility."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def translated(self, dx: float, dy: float) -> "Location":
        """Return a new location shifted by ``(dx, dy)``."""
        return Location(self.x + dx, self.y + dy)

    def snapped(self) -> "Location":
        """Return the location snapped to the integer grid cell centre."""
        return Location(float(round(self.x)), float(round(self.y)))

    def as_tuple(self) -> tuple[float, float]:
        """Return ``(x, y)`` — convenient for numpy interop."""
        return (self.x, self.y)

    def __iter__(self):
        yield self.x
        yield self.y


def euclidean(a: Location, b: Location) -> float:
    """Euclidean distance between two locations."""
    return a.distance_to(b)


def manhattan(a: Location, b: Location) -> float:
    """Manhattan (L1) distance between two locations."""
    return a.manhattan_to(b)


def pairwise_distances(
    points: Sequence[Location], others: Sequence[Location] | None = None
) -> np.ndarray:
    """Dense Euclidean distance matrix between two location sequences.

    When ``others`` is omitted the matrix is the symmetric self-distance
    matrix of ``points``.  Vectorized with numpy: the allocation algorithms
    evaluate sensor-to-query distances for hundreds of sensors per slot and
    a Python double loop would dominate the runtime.
    """
    left = np.asarray([(p.x, p.y) for p in points], dtype=float)
    if others is None:
        right = left
    else:
        right = np.asarray([(p.x, p.y) for p in others], dtype=float)
    if left.size == 0 or right.size == 0:
        return np.zeros((len(points), 0 if others is not None else len(points)))
    diff = left[:, None, :] - right[None, :, :]
    return np.sqrt((diff**2).sum(axis=2))


def nearest(target: Location, candidates: Iterable[Location]) -> Location:
    """Return the candidate closest to ``target``.

    Raises:
        ValueError: if ``candidates`` is empty.
    """
    best = None
    best_dist = math.inf
    # reprolint: disable=hot-loop(scalar utility over a handful of Locations, not the announcement axis)
    for candidate in candidates:
        dist = target.distance_to(candidate)
        if dist < best_dist:
            best, best_dist = candidate, dist
    if best is None:
        raise ValueError("nearest() requires at least one candidate location")
    return best


def centroid(points: Sequence[Location]) -> Location:
    """Arithmetic mean of a non-empty sequence of locations.

    Raises:
        ValueError: if ``points`` is empty.
    """
    if not points:
        raise ValueError("centroid() requires at least one location")
    sx = sum(p.x for p in points)
    sy = sum(p.y for p in points)
    return Location(sx / len(points), sy / len(points))
