"""Tests for the mobility substrate (RWM, waypoint, trace, stationary, RNC)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mobility import (
    PAPER_RNC_REGION,
    PAPER_RNC_WORKING_REGION,
    MobilityTrace,
    NokiaCampaignSynthesizer,
    RandomWaypointMobility,
    StationaryMobility,
    TraceMobility,
    WaypointMobility,
)
from repro.spatial import Location, Region

REGION = Region.from_origin(80, 80)


class TestRandomWaypoint:
    def test_population_size(self):
        model = RandomWaypointMobility(REGION, 50, np.random.default_rng(0))
        assert model.n_sensors == 50
        assert len(model.locations()) == 50

    def test_positions_stay_in_region(self):
        model = RandomWaypointMobility(REGION, 30, np.random.default_rng(1))
        for _ in range(100):
            model.advance()
            assert all(REGION.contains(p) for p in model.locations())

    def test_axis_aligned_steps(self):
        model = RandomWaypointMobility(REGION, 20, np.random.default_rng(2))
        before = model.locations()
        model.advance()
        after = model.locations()
        for a, b in zip(before, after):
            # One coordinate unchanged (or clamped at the border).
            moved_x = abs(a.x - b.x) > 1e-12
            moved_y = abs(a.y - b.y) > 1e-12
            assert not (moved_x and moved_y)

    def test_step_bounded_by_max_speed(self):
        model = RandomWaypointMobility(
            REGION, 40, np.random.default_rng(3), max_speed_choices=(4.0, 5.0)
        )
        for _ in range(20):
            before = model.locations()
            model.advance()
            for a, b in zip(before, model.locations()):
                assert a.distance_to(b) <= 5.0 + 1e-9

    def test_max_speed_choices_respected(self):
        model = RandomWaypointMobility(
            REGION, 100, np.random.default_rng(4), max_speed_choices=(4.0, 5.0)
        )
        assert set(np.unique(model.max_speeds)) <= {4.0, 5.0}

    def test_invalid_args(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            RandomWaypointMobility(REGION, 0, rng)
        with pytest.raises(ValueError):
            RandomWaypointMobility(REGION, 5, rng, max_speed_choices=())

    def test_present_in_subregion(self):
        model = RandomWaypointMobility(REGION, 100, np.random.default_rng(5))
        hotspot = Region.centered_in(REGION, 50, 50)
        present = model.present_in(hotspot)
        assert all(hotspot.contains(model.location_of(i)) for i in present)

    def test_run_records_frames(self):
        model = RandomWaypointMobility(REGION, 10, np.random.default_rng(6))
        frames = model.run(5)
        assert len(frames) == 5
        assert all(len(f) == 10 for f in frames)

    def test_run_invalid(self):
        model = RandomWaypointMobility(REGION, 10, np.random.default_rng(6))
        with pytest.raises(ValueError):
            model.run(0)

    def test_deterministic_given_seed(self):
        a = RandomWaypointMobility(REGION, 10, np.random.default_rng(42))
        b = RandomWaypointMobility(REGION, 10, np.random.default_rng(42))
        a.advance()
        b.advance()
        assert a.locations() == b.locations()


class TestWaypointMobility:
    def test_reaches_targets_eventually(self):
        model = WaypointMobility(REGION, 5, np.random.default_rng(0), max_pause=0)
        start = model.locations()
        for _ in range(200):
            model.advance()
        assert model.locations() != start

    def test_stays_in_region(self):
        model = WaypointMobility(REGION, 20, np.random.default_rng(1))
        for _ in range(100):
            model.advance()
            assert all(REGION.contains(p) for p in model.locations())

    def test_invalid_speeds(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            WaypointMobility(REGION, 5, rng, min_speed=0.0)
        with pytest.raises(ValueError):
            WaypointMobility(REGION, 5, rng, min_speed=5.0, max_speed=1.0)


class _RecordingRng:
    """Wrap a Generator, logging every draw batch for the replay reference."""

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng
        self.log: list[np.ndarray] = []

    def uniform(self, low=0.0, high=1.0, size=None):
        out = self._rng.uniform(low, high, size=size)
        self.log.append(np.atleast_1d(np.array(out, copy=True)))
        return out

    def integers(self, low, high=None, size=None):
        out = self._rng.integers(low, high, size=size)
        self.log.append(np.atleast_1d(np.array(out, copy=True)))
        return out


class _DrawQueue:
    def __init__(self, log):
        self._log = list(log)

    def next(self) -> np.ndarray:
        return self._log.pop(0)

    @property
    def empty(self) -> bool:
        return not self._log


def _reference_advance(positions, targets, speeds, pauses, draws: _DrawQueue):
    """Per-sensor replay of one WaypointMobility slot.

    Consumes the *recorded* draw batches of the vectorized ``advance()`` in
    its documented phase order (arrival pauses / target xs / target ys /
    trip speeds) but applies every kinematic update in a scalar per-sensor
    loop — so any vectorization bug (masking, broadcasting, float
    grouping) diverges from this reference immediately.
    """
    n = len(positions)
    was_pausing = pauses > 0
    pauses[was_pausing] -= 1
    arrived = []
    for i in range(n):
        if was_pausing[i]:
            continue
        delta = targets[i] - positions[i]
        dist = np.hypot(delta[0], delta[1])
        if dist <= speeds[i]:
            positions[i] = targets[i]
            arrived.append(i)
        else:
            positions[i] = positions[i] + delta / dist * speeds[i]
    if arrived:
        pause_draws = draws.next()
        for k, i in enumerate(arrived):
            pauses[i] = pause_draws[k]
    arrived_set = set(arrived)
    needs = [
        i
        for i in range(n)
        if (was_pausing[i] or i in arrived_set) and pauses[i] == 0
    ]
    if needs:
        xs, ys, speed_draws = draws.next(), draws.next(), draws.next()
        for k, i in enumerate(needs):
            targets[i] = (xs[k], ys[k])
            speeds[i] = speed_draws[k]


class TestWaypointReplayParity:
    """The loop-free ``advance()`` is positionally identical to a scalar
    per-sensor reference replaying the same recorded draws (the seeded
    equivalent the vectorization documents)."""

    def test_vectorized_advance_matches_scalar_replay(self):
        model = WaypointMobility(
            REGION, 40, np.random.default_rng(99), min_speed=1.0,
            max_speed=6.0, max_pause=3,
        )
        positions = model._positions.copy()
        targets = model._targets.copy()
        speeds = model._speeds.copy()
        pauses = model._pauses.copy()
        recorder = _RecordingRng(model._rng)
        model._rng = recorder
        for step in range(80):
            recorder.log.clear()
            model.advance()
            draws = _DrawQueue(recorder.log)
            _reference_advance(positions, targets, speeds, pauses, draws)
            assert draws.empty, f"unconsumed draw batches at step {step}"
            np.testing.assert_array_equal(model._positions, positions)
            np.testing.assert_array_equal(model._targets, targets)
            np.testing.assert_array_equal(model._speeds, speeds)
            np.testing.assert_array_equal(model._pauses, pauses)

    def test_scalar_sample_target_override_is_honoured(self):
        class PinnedTargets(WaypointMobility):
            """Overrides only the scalar hook — the pre-batch extension API."""

            def sample_target(self, index):
                return Location(1.0 + index, 2.0)

        model = PinnedTargets(REGION, 5, np.random.default_rng(0), max_pause=0)
        assert model._targets[3, 0] == 4.0
        assert set(model._targets[:, 1]) == {2.0}

    def test_scalar_override_below_a_batched_subclass_is_honoured(self):
        """The shim is MRO-based: a subclass of the (batched) Nokia
        synthesizer that overrides only the scalar hook still wins."""

        class Commuters(NokiaCampaignSynthesizer):
            def sample_target(self, index):
                return Location(3.0, 4.0)

        model = Commuters(
            np.random.default_rng(0), n_sensors=6, target_presence=2.0, max_pause=0
        )
        assert set(model._targets[:, 0]) == {3.0}
        assert set(model._targets[:, 1]) == {4.0}

    def test_zero_pause_reassigns_immediately(self):
        model = WaypointMobility(REGION, 30, np.random.default_rng(5), max_pause=0)
        for _ in range(50):
            model.advance()
            # With max_pause=0 nobody ever pauses: every sensor always has
            # a live trip (positive speed).
            assert (model._pauses == 0).all()
            assert (model._speeds > 0).all()


class TestMobilityTrace:
    def _trace(self) -> MobilityTrace:
        frames = [
            [Location(0, 0), Location(5, 5)],
            [Location(1, 0), Location(5, 6)],
            [Location(2, 0), Location(5, 7)],
        ]
        return MobilityTrace.from_frames(Region.from_origin(10, 10), frames)

    def test_dimensions(self):
        trace = self._trace()
        assert trace.n_slots == 3
        assert trace.n_sensors == 2

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            MobilityTrace(Region.from_origin(1, 1), ())

    def test_ragged_frames_rejected(self):
        with pytest.raises(ValueError):
            MobilityTrace.from_frames(
                Region.from_origin(10, 10),
                [[Location(0, 0)], [Location(0, 0), Location(1, 1)]],
            )

    def test_replay_and_hold_at_end(self):
        replay = TraceMobility(self._trace())
        assert replay.locations()[0] == Location(0, 0)
        replay.advance()
        assert replay.locations()[0] == Location(1, 0)
        replay.advance()
        replay.advance()  # past the end: hold the last frame
        assert replay.locations()[0] == Location(2, 0)
        assert replay.cursor == 2

    def test_reset(self):
        replay = TraceMobility(self._trace())
        replay.advance()
        replay.reset()
        assert replay.cursor == 0
        assert replay.locations()[0] == Location(0, 0)

    def test_save_load_roundtrip(self, tmp_path):
        trace = self._trace()
        path = tmp_path / "trace.json"
        trace.save(path)
        loaded = MobilityTrace.load(path)
        assert loaded.region == trace.region
        assert loaded.frames == trace.frames

    def test_mean_presence(self):
        trace = self._trace()
        sub = Region(0, 0, 3, 3)
        # Sensor 0 is inside sub at every slot; sensor 1 never.
        assert trace.mean_presence(sub) == pytest.approx(1.0)


class TestArrayNativeTrace:
    """``MobilityTrace.from_xy``: lazy Location frames over stacked arrays."""

    def _xy_frames(self):
        rng = np.random.default_rng(3)
        return [rng.uniform(0, 10, size=(4, 2)) for _ in range(3)]

    def test_equals_eager_trace(self):
        frames_xy = self._xy_frames()
        lazy = MobilityTrace.from_xy(Region.from_origin(10, 10), frames_xy)
        eager = MobilityTrace.from_frames(
            Region.from_origin(10, 10),
            [[Location(float(x), float(y)) for x, y in f] for f in frames_xy],
        )
        assert lazy.n_slots == 3 and lazy.n_sensors == 4
        assert lazy == eager
        assert eager == lazy

    def test_frame_xy_serves_arrays_without_materializing(self):
        frames_xy = self._xy_frames()
        lazy = MobilityTrace.from_xy(Region.from_origin(10, 10), frames_xy)
        for t in range(3):
            np.testing.assert_array_equal(lazy.frame_xy(t), frames_xy[t])
        # No Location frame was built by the array accessors.
        assert lazy.frames._frames == [None, None, None]
        # Indexing materializes (and caches) the requested frame only.
        frame = lazy.frames[1]
        assert frame[2] == Location(*map(float, frames_xy[1][2]))
        assert lazy.frames._frames[0] is None

    def test_replay_save_load_roundtrip(self, tmp_path):
        frames_xy = self._xy_frames()
        lazy = MobilityTrace.from_xy(Region.from_origin(10, 10), frames_xy)
        replay = TraceMobility(lazy)
        np.testing.assert_array_equal(replay.locations_xy(), frames_xy[0])
        replay.advance()
        assert replay.locations()[0] == Location(*map(float, frames_xy[1][0]))
        path = tmp_path / "lazy-trace.json"
        lazy.save(path)
        loaded = MobilityTrace.load(path)
        assert loaded == lazy

    def test_mean_presence_matches_scalar_walk(self):
        frames_xy = self._xy_frames()
        lazy = MobilityTrace.from_xy(Region.from_origin(10, 10), frames_xy)
        sub = Region(0, 0, 5, 5)
        expected = sum(
            sum(1 for loc in frame if sub.contains(loc)) for frame in lazy.frames
        ) / lazy.n_slots
        assert lazy.mean_presence(sub) == expected

    def test_validation(self):
        region = Region.from_origin(10, 10)
        with pytest.raises(ValueError):
            MobilityTrace.from_xy(region, [np.zeros((2, 3))])
        with pytest.raises(ValueError):
            MobilityTrace.from_xy(region, [np.zeros((2, 2)), np.zeros((3, 2))])


class TestStationary:
    def test_never_moves(self):
        positions = [Location(1, 1), Location(2, 2)]
        model = StationaryMobility(Region.from_origin(5, 5), positions)
        model.advance()
        assert model.locations() == tuple(positions)

    def test_rejects_outside_positions(self):
        with pytest.raises(ValueError):
            StationaryMobility(Region.from_origin(5, 5), [Location(9, 9)])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            StationaryMobility(Region.from_origin(5, 5), [])


class TestNokiaSynthesizer:
    def test_default_dimensions_match_paper(self):
        assert PAPER_RNC_REGION.width == 237.0
        assert PAPER_RNC_REGION.height == 300.0
        assert PAPER_RNC_WORKING_REGION.width == 100.0

    def test_population_and_containment(self):
        model = NokiaCampaignSynthesizer(
            np.random.default_rng(0), n_sensors=100, target_presence=20
        )
        assert model.n_sensors == 100
        trace = model.synthesize(5, warmup=2)
        assert trace.n_slots == 5
        for frame in trace.frames:
            assert all(PAPER_RNC_REGION.contains(p) for p in frame)

    def test_anchor_bias_affects_presence(self):
        low = NokiaCampaignSynthesizer(
            np.random.default_rng(1), n_sensors=200, anchor_in_probability=0.0
        ).synthesize(10, warmup=10)
        high = NokiaCampaignSynthesizer(
            np.random.default_rng(1), n_sensors=200, anchor_in_probability=0.9
        ).synthesize(10, warmup=10)
        assert high.mean_presence(PAPER_RNC_WORKING_REGION) > low.mean_presence(
            PAPER_RNC_WORKING_REGION
        )

    def test_calibrated_presence_near_target(self):
        model = NokiaCampaignSynthesizer.calibrated(
            np.random.default_rng(7),
            n_sensors=300,
            target_presence=60.0,
            pilot_slots=30,
            iterations=3,
        )
        trace = model.synthesize(30, warmup=15)
        presence = trace.mean_presence(model.working_region)
        assert 0.6 * 60 <= presence <= 1.5 * 60

    def test_invalid_parameters(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            NokiaCampaignSynthesizer(rng, n_sensors=10, target_presence=50)
        with pytest.raises(ValueError):
            NokiaCampaignSynthesizer(rng, anchor_in_probability=1.5)
        with pytest.raises(ValueError):
            NokiaCampaignSynthesizer(rng, anchors_per_sensor=0)
