"""Multi-seed replication: are the reproduced shapes seed-robust?

A single-seed sweep can get lucky.  :func:`replicate` reruns a figure
function over several seeds and aggregates per-algorithm/metric series into
mean and standard deviation; :func:`ordering_robustness` counts in how many
replicates one algorithm dominates another — the quantitative backing for
EXPERIMENTS.md's "orderings robust across seeds".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from .config import ExperimentScale
from .runner import FigureResult, parallel_map

__all__ = ["ReplicatedResult", "replicate", "ordering_robustness"]


def _replicate_cell(
    figure_fn: Callable[..., FigureResult], scale: ExperimentScale, seed: int
) -> FigureResult:
    """Worker: one seed's figure run (module-level for process pools)."""
    return figure_fn(scale, seed=seed)


@dataclass
class ReplicatedResult:
    """Aggregate of several same-shape figure results."""

    figure_id: str
    x_values: list[float]
    seeds: list[int]
    #: series[alg][metric] -> (mean array, std array) over replicates
    series: dict[str, dict[str, tuple[np.ndarray, np.ndarray]]] = field(
        default_factory=dict
    )
    replicates: list[FigureResult] = field(default_factory=list)

    def mean(self, algorithm: str, metric: str) -> np.ndarray:
        return self.series[algorithm][metric][0]

    def std(self, algorithm: str, metric: str) -> np.ndarray:
        return self.series[algorithm][metric][1]

    def format(self, metric: str) -> str:
        algorithms = [a for a in self.series if metric in self.series[a]]
        lines = [f"[{metric}] mean ± std over seeds {self.seeds}"]
        for algorithm in algorithms:
            mean, std = self.series[algorithm][metric]
            cells = "  ".join(f"{m:.1f}±{s:.1f}" for m, s in zip(mean, std))
            lines.append(f"  {algorithm:<12} {cells}")
        return "\n".join(lines)


def replicate(
    figure_fn: Callable[..., FigureResult],
    scale: ExperimentScale,
    seeds: Sequence[int],
    max_workers: int | None = None,
) -> ReplicatedResult:
    """Run ``figure_fn(scale, seed=s)`` for every seed and aggregate.

    ``max_workers`` fans the replications out over a process pool — each
    seed is a fully independent simulation, so this is embarrassingly
    parallel and the aggregate is identical to the serial run.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    results = parallel_map(
        _replicate_cell, [(figure_fn, scale, int(s)) for s in seeds], max_workers
    )
    first = results[0]
    for r in results[1:]:
        if r.x_values != first.x_values:
            raise ValueError("replicates disagree on the sweep's x values")
    aggregated = ReplicatedResult(
        figure_id=first.figure_id,
        x_values=list(first.x_values),
        seeds=[int(s) for s in seeds],
        replicates=results,
    )
    for algorithm, metrics in first.series.items():
        aggregated.series[algorithm] = {}
        for metric in metrics:
            stacked = np.asarray(
                [r.series[algorithm][metric] for r in results], dtype=float
            )
            aggregated.series[algorithm][metric] = (
                stacked.mean(axis=0),
                stacked.std(axis=0),
            )
    return aggregated


def ordering_robustness(
    replicated: ReplicatedResult,
    winner: str,
    loser: str,
    metric: str,
    slack: float = 0.0,
) -> float:
    """Fraction of replicates in which ``winner`` dominates ``loser``."""
    wins = sum(
        1
        for r in replicated.replicates
        if r.dominates(winner, loser, metric, slack=slack)
    )
    return wins / len(replicated.replicates)
