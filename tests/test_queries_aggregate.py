"""Tests for aggregate and trajectory queries (eq. 5)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import make_snapshot
from repro.queries import (
    QueryType,
    SpatialAggregateQuery,
    TrajectoryQuery,
    sensor_quality,
)
from repro.spatial import Location, Region, Trajectory

REGION = Region(0, 0, 20, 20)


def agg(budget=100.0, sensing_range=5.0, coverage_radius=None) -> SpatialAggregateQuery:
    return SpatialAggregateQuery(
        REGION, budget=budget, sensing_range=sensing_range, coverage_radius=coverage_radius
    )


class TestSensorQuality:
    def test_quality_formula(self):
        snap = make_snapshot(inaccuracy=0.2, trust=0.5)
        assert sensor_quality(snap) == pytest.approx(0.8 * 0.5)


class TestSpatialAggregateQuery:
    def test_eq5_value(self):
        query = agg(budget=100.0, sensing_range=5.0)
        snaps = [
            make_snapshot(0, x=5, y=5, inaccuracy=0.1, trust=1.0),
            make_snapshot(1, x=15, y=15, inaccuracy=0.3, trust=1.0),
        ]
        coverage = query.coverage([s.location for s in snaps])
        mean_q = (0.9 + 0.7) / 2
        assert query.value(snaps) == pytest.approx(100.0 * coverage * mean_q)

    def test_empty_set(self):
        assert agg().value([]) == 0.0

    def test_relevance_boundary(self):
        query = agg(sensing_range=5.0)
        assert query.relevant(make_snapshot(x=10, y=10))  # inside
        assert query.relevant(make_snapshot(x=24, y=10))  # 4 away from edge
        assert not query.relevant(make_snapshot(x=26, y=10))  # 6 away

    def test_irrelevant_sensor_never_helps(self):
        query = agg(sensing_range=5.0)
        inside = make_snapshot(0, x=10, y=10)
        outside = make_snapshot(1, x=40, y=40)
        assert query.value([inside, outside]) <= query.value([inside])

    def test_low_quality_sensor_can_reduce_value(self):
        """Eq. 5 is non-monotone: quality dilution (Section 3.2)."""
        query = agg(budget=100.0, sensing_range=20.0)
        good = make_snapshot(0, x=10, y=10, inaccuracy=0.0, trust=1.0)
        junk = make_snapshot(1, x=10.5, y=10, inaccuracy=0.0, trust=0.05)
        assert query.value([good, junk]) < query.value([good])

    def test_not_submodular_witness(self):
        """Section 3.2: quality weighting destroys submodularity.

        Adding a zero-quality sensor dilutes the quality mean by 1/(n+1):
        the damage *shrinks* as the base set grows, violating diminishing
        returns.  With heroes co-located, coverage is constant and the
        arithmetic is exact: gains are -BG/2 vs -BG/3.
        """
        query = agg(budget=100.0, sensing_range=4.0)
        hero1 = make_snapshot(0, x=10, y=10, trust=1.0)
        hero2 = make_snapshot(1, x=10, y=10.01, trust=1.0)
        junk = make_snapshot(2, x=10, y=10, trust=0.0)
        gain_small = query.value([hero1, junk]) - query.value([hero1])
        gain_big = query.value([hero1, hero2, junk]) - query.value([hero1, hero2])
        # Diminishing returns would require gain_big <= gain_small.
        assert gain_big > gain_small
        assert gain_small < 0  # and the function is non-monotone, too

    def test_incremental_state_matches_direct(self):
        rng = np.random.default_rng(0)
        query = agg(budget=50.0, sensing_range=6.0)
        snaps = [
            make_snapshot(
                i,
                x=float(rng.uniform(-5, 25)),
                y=float(rng.uniform(-5, 25)),
                inaccuracy=float(rng.uniform(0, 0.2)),
                trust=float(rng.uniform(0.3, 1.0)),
            )
            for i in range(12)
        ]
        state = query.new_state()
        for s in snaps:
            gain = state.gain(s)
            realized = state.add(s)
            assert gain == pytest.approx(realized, abs=1e-9)
        assert state.value == pytest.approx(query.value(snaps), abs=1e-9)

    def test_coverage_radius_separate_from_sensing_range(self):
        wide = agg(sensing_range=5.0)
        narrow = agg(sensing_range=5.0, coverage_radius=1.0)
        snap = make_snapshot(x=10, y=10)
        assert narrow.value([snap]) < wide.value([snap])

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            SpatialAggregateQuery(REGION, budget=1.0, sensing_range=0.0)
        with pytest.raises(ValueError):
            SpatialAggregateQuery(REGION, budget=1.0, coverage_radius=-1.0)

    def test_query_type(self):
        assert agg().query_type is QueryType.AGGREGATE

    @given(st.floats(0, 20), st.floats(0, 20))
    @settings(max_examples=30)
    def test_value_bounded_by_budget(self, x, y):
        query = agg(budget=40.0)
        snap = make_snapshot(x=x, y=y)
        assert 0.0 <= query.value([snap]) <= 40.0 + 1e-9


class TestTrajectoryQuery:
    def _query(self, budget=50.0):
        path = Trajectory.from_points([Location(0, 0), Location(20, 0)])
        return TrajectoryQuery(path, budget=budget, sensing_range=3.0, spacing=1.0)

    def test_query_type(self):
        assert self._query().query_type is QueryType.TRAJECTORY

    def test_on_path_sensor_scores(self):
        query = self._query()
        snap = make_snapshot(x=10, y=0)
        assert query.value([snap]) > 0.0

    def test_far_sensor_is_irrelevant(self):
        query = self._query()
        assert not query.relevant(make_snapshot(x=10, y=10))
        assert query.relevant(make_snapshot(x=10, y=4))

    def test_more_path_sensors_cover_more(self):
        query = self._query()
        one = [make_snapshot(0, x=5, y=0)]
        two = one + [make_snapshot(1, x=15, y=0)]
        assert query.value(two) > query.value(one)

    def test_incremental_state(self):
        query = self._query()
        snaps = [make_snapshot(i, x=4.0 * i, y=0.5) for i in range(5)]
        state = query.new_state()
        for s in snaps:
            assert state.gain(s) == pytest.approx(state.add(s), abs=1e-9)
        assert state.value == pytest.approx(query.value(snaps), abs=1e-9)

    def test_nearest_path_distance(self):
        query = self._query()
        assert query.nearest_path_distance(Location(10, 2)) == pytest.approx(2.0)
