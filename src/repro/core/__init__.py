"""The paper's core contribution: allocation algorithms, controllers, engine."""

from .aggregator import Aggregator, QueryReceipt, SlotDigest, UserAccount
from .allocation import AllocationResult, Allocator, check_distinct
from .clairvoyant import ClairvoyantPlan, simulate_myopic_gap, solve_clairvoyant
from .baselines import BaselineAllocator
from .errors import AllocationError, PaymentInvariantError, ReproError, SolverError
from .greedy import GreedyAllocator
from .local_search import LocalSearchPointAllocator, RandomizedLocalSearchAllocator
from .metrics import SimulationSummary, SlotRecord
from .mix import BaselineMixAllocator, MixAllocator, MixOutcome
from .monitoring import (
    LocationMonitoringController,
    RegionMonitoringController,
    RegionSlotOutcome,
)
from .optimal import OptimalPointAllocator, exhaustive_point_search
from .payments import proportionate_shares, redistribute_contribution
from .point_problem import PointProblem
from .sampling import SamplingPlan, paper_weight_function, plan_sampling
from .simulation import (
    LocationMonitoringSimulation,
    MixSimulation,
    OneShotSimulation,
    RegionMonitoringSimulation,
)

__all__ = [
    "Aggregator",
    "QueryReceipt",
    "SlotDigest",
    "UserAccount",
    "ClairvoyantPlan",
    "solve_clairvoyant",
    "simulate_myopic_gap",
    "AllocationResult",
    "Allocator",
    "check_distinct",
    "ReproError",
    "AllocationError",
    "PaymentInvariantError",
    "SolverError",
    "OptimalPointAllocator",
    "exhaustive_point_search",
    "LocalSearchPointAllocator",
    "RandomizedLocalSearchAllocator",
    "GreedyAllocator",
    "BaselineAllocator",
    "PointProblem",
    "proportionate_shares",
    "redistribute_contribution",
    "LocationMonitoringController",
    "RegionMonitoringController",
    "RegionSlotOutcome",
    "SamplingPlan",
    "plan_sampling",
    "paper_weight_function",
    "MixAllocator",
    "BaselineMixAllocator",
    "MixOutcome",
    "SimulationSummary",
    "SlotRecord",
    "OneShotSimulation",
    "LocationMonitoringSimulation",
    "RegionMonitoringSimulation",
    "MixSimulation",
]
