"""The RWM scenario (Section 4.2): random waypoint over an 80x80 grid.

200 sensors move with axis-aligned steps at speeds up to {4, 5}; the
aggregator works the central 50x50 hotspot; eq. 4 uses ``dmax = 5``.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..mobility import MobilityTrace, RandomWaypointMobility
from ..sensors import FleetConfig
from ..spatial import Region
from .scenario import Scenario

__all__ = ["build_rwm_scenario", "RWM_REGION", "RWM_WORKING_REGION"]

RWM_REGION = Region.from_origin(80.0, 80.0)
RWM_WORKING_REGION = Region.centered_in(RWM_REGION, 50.0, 50.0)


@lru_cache(maxsize=8)
def _cached_trace(seed: int, n_sensors: int, n_slots: int) -> MobilityTrace:
    rng = np.random.default_rng(seed)
    model = RandomWaypointMobility(RWM_REGION, n_sensors, rng)
    # Array-native frames: metro-scale worlds set up without building a
    # single Location (the trace materializes them lazily if ever asked).
    return MobilityTrace.from_xy(RWM_REGION, model.run_xy(n_slots))


def build_rwm_scenario(
    seed: int = 2013,
    n_sensors: int = 200,
    n_slots: int = 50,
    fleet_config: FleetConfig | None = None,
) -> Scenario:
    """Paper defaults: 200 sensors, 50 slots, fixed energy cost, zero PSL."""
    trace = _cached_trace(seed, n_sensors, n_slots)
    return Scenario(
        name="RWM",
        trace=trace,
        working_region=RWM_WORKING_REGION,
        fleet_config=fleet_config if fleet_config is not None else FleetConfig(),
        fleet_seed=seed + 1,
        dmax=5.0,
    )
