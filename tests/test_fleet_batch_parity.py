"""Announcement-batch parity: the vectorized array path vs the object path.

The array-backed fleet must be indistinguishable from the historical
per-sensor object walk: same announcement sets (region mask + exhaustion),
bit-identical eq.-8 prices (energy + windowed privacy) across energy and
privacy configs, identical snapshots, and — downstream — bit-identical
allocations (sensor picks, values, payments) through the dense and sharded
kernels.  ``object_path_announcements`` below *is* the seed implementation,
driven through the fleet's read-only :class:`Sensor` views so it always
reflects the live array state.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    BaselineAllocator,
    GreedyAllocator,
    ShardedKernel,
    ValuationKernel,
    one_shot_engine,
)
from repro.mobility import RandomWaypointMobility, StationaryMobility
from repro.queries import PointQueryWorkload
from repro.sensors import (
    AnnouncementBatch,
    FleetConfig,
    SensorFleet,
    TieredTrust,
    UniformTrust,
)
from repro.spatial import Location, Region

REGION = Region.from_origin(40, 40)
HOTSPOT = Region.centered_in(REGION, 26, 26)

#: The announcement-relevant config axes: energy model x privacy x trust.
CONFIGS = {
    "paper_default": FleetConfig(),
    "linear_energy": FleetConfig(linear_energy=True, lifetime=4),
    "random_privacy": FleetConfig(random_privacy=True, privacy_window=3),
    "linear_and_privacy": FleetConfig(
        linear_energy=True,
        beta_range=(0.5, 3.0),
        random_privacy=True,
        privacy_window=4,
        lifetime=5,
    ),
    "uniform_trust": FleetConfig(trust_model=UniformTrust(0.2, 0.9)),
    "tiered_trust_linear": FleetConfig(
        trust_model=TieredTrust(), linear_energy=True, lifetime=3
    ),
}


def make_fleet(config: FleetConfig, seed: int = 7, n: int = 60) -> SensorFleet:
    rng = np.random.default_rng(seed)
    return SensorFleet(RandomWaypointMobility(REGION, n, rng), HOTSPOT, config, rng)


def object_path_announcements(fleet: SensorFleet):
    """The seed implementation's per-sensor loop, over the live state."""
    snapshots = []
    locations = fleet.mobility.locations()
    for sensor, location in zip(fleet.sensors, locations):
        if sensor.is_exhausted:
            continue
        if not fleet.working_region.contains(location):
            continue
        snapshots.append(sensor.snapshot(location, fleet.clock))
    return snapshots


class ObjectPathFleet(SensorFleet):
    """A fleet whose announcements use the per-sensor object walk."""

    def announcements(self):  # type: ignore[override]
        super().announcements()  # keep position bookkeeping identical
        return object_path_announcements(self)


def drive_slot(fleet: SensorFleet, rng: np.random.Generator, batch) -> None:
    """Allocate a point-query slot and book the results, advancing state."""
    queries = PointQueryWorkload(
        HOTSPOT, n_queries=25, budget=18.0, dmax=6.0
    ).generate(fleet.clock, rng)
    result = GreedyAllocator().allocate(queries, batch)
    fleet.record_measurements(list(result.selected))
    fleet.advance()


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_batch_bit_identical_to_object_path(name):
    """Region mask, exhaustion, eq.-8 costs, snapshots, over live slots."""
    config = CONFIGS[name]
    fleet = make_fleet(config)
    workload_rng = np.random.default_rng(101)
    for _ in range(6):
        batch = fleet.announcements()
        reference = object_path_announcements(fleet)
        assert isinstance(batch, AnnouncementBatch)
        assert len(batch) == len(reference)
        for j, snap in enumerate(reference):
            assert int(batch.ids[j]) == snap.sensor_id
            assert batch.xy[j, 0] == snap.location.x  # exact
            assert batch.xy[j, 1] == snap.location.y
            assert batch.costs[j] == snap.cost  # eq. 8, bit-identical
            assert batch.gamma[j] == snap.inaccuracy
            assert batch.trust[j] == snap.trust
            assert batch[j] == snap  # lazy snapshot view, field-for-field
        drive_slot(fleet, workload_rng, batch)


@pytest.mark.parametrize("name", ["paper_default", "linear_and_privacy"])
@pytest.mark.parametrize("sharded", [False, True], ids=["dense", "sharded"])
def test_allocations_bit_identical(name, sharded):
    """Greedy picks, values and payments match the object path exactly."""
    config = CONFIGS[name]
    batch_fleet = make_fleet(config)
    object_fleet = make_fleet(config)
    rng_a = np.random.default_rng(55)
    rng_b = np.random.default_rng(55)
    allocator = GreedyAllocator()
    for _ in range(5):
        batch = batch_fleet.announcements()
        reference = object_path_announcements(object_fleet)
        queries_a = PointQueryWorkload(
            HOTSPOT, n_queries=30, budget=18.0, dmax=6.0
        ).generate(batch_fleet.clock, rng_a)
        queries_b = PointQueryWorkload(
            HOTSPOT, n_queries=30, budget=18.0, dmax=6.0
        ).generate(object_fleet.clock, rng_b)
        if sharded:
            kernel_a = ShardedKernel.from_batch(batch)
            kernel_b = ShardedKernel.from_sensors(reference)
        else:
            kernel_a = ValuationKernel.from_batch(batch)
            kernel_b = ValuationKernel.from_sensors(reference)
        a = allocator.allocate(queries_a, batch, kernel=kernel_a)
        b = allocator.allocate(queries_b, reference, kernel=kernel_b)
        # Workloads are seeded identically but query ids are process-unique;
        # compare by position in the (identical) query order.
        id_map = {qa.query_id: qb.query_id for qa, qb in zip(queries_a, queries_b)}
        assert {id_map[q]: v for q, v in a.values.items()} == b.values
        assert {id_map[q]: s for q, s in a.assignments.items()} == b.assignments
        assert set(a.selected) == set(b.selected)
        assert {(id_map[q], s): p for (q, s), p in a.payments.items()} == b.payments
        batch_fleet.record_measurements(list(a.selected))
        object_fleet.record_measurements(list(b.selected))
        batch_fleet.advance()
        object_fleet.advance()


def test_baseline_allocations_bit_identical():
    config = CONFIGS["linear_and_privacy"]
    fleet = make_fleet(config)
    rng = np.random.default_rng(77)
    for _ in range(3):
        batch = fleet.announcements()
        reference = object_path_announcements(fleet)
        queries = PointQueryWorkload(
            HOTSPOT, n_queries=20, budget=18.0, dmax=6.0
        ).generate(fleet.clock, rng)
        a = BaselineAllocator().allocate(queries, batch)
        b = BaselineAllocator().allocate(queries, reference)
        assert a.values == b.values
        assert a.assignments == b.assignments
        assert a.payments == b.payments
        fleet.record_measurements(list(a.selected))
        fleet.advance()


def test_end_to_end_engine_parity():
    """Full SlotEngine runs: batch fleet vs object-path fleet, slot by slot."""
    config = CONFIGS["linear_and_privacy"]

    def build(cls):
        rng = np.random.default_rng(13)
        fleet = cls(RandomWaypointMobility(REGION, 50, rng), HOTSPOT, config, rng)
        workload = PointQueryWorkload(HOTSPOT, n_queries=25, budget=18.0, dmax=6.0)
        return one_shot_engine(
            fleet, workload, GreedyAllocator(), np.random.default_rng(29)
        )

    summary_batch = build(SensorFleet).run(6)
    summary_object = build(ObjectPathFleet).run(6)
    assert summary_batch.average_utility == summary_object.average_utility
    for rec_a, rec_b in zip(summary_batch.slots, summary_object.slots):
        assert rec_a.value == rec_b.value
        assert rec_a.cost == rec_b.cost
        assert rec_a.issued == rec_b.issued
        assert rec_a.answered == rec_b.answered


# ----------------------------------------------------------------------
# the O(1) token / reuse protocol
# ----------------------------------------------------------------------
def stationary_fleet(lifetime: int = 50) -> SensorFleet:
    rng = np.random.default_rng(3)
    positions = [Location(float(5 + i), 20.0) for i in range(10)]
    mobility = StationaryMobility(REGION, positions)
    return SensorFleet(mobility, HOTSPOT, FleetConfig(lifetime=lifetime), rng)


def test_token_stable_across_unchanged_slots():
    fleet = stationary_fleet()
    first = fleet.announcements()
    kernel = ValuationKernel.ensure(None, first)
    fleet.advance()
    second = fleet.announcements()
    assert second.token == first.token
    assert ValuationKernel.ensure(kernel, second) is kernel
    assert kernel.sensors is second  # rebound to the current batch


def test_token_changes_on_exhaustion_and_movement():
    fleet = stationary_fleet(lifetime=1)
    first = fleet.announcements()
    kernel = ValuationKernel.ensure(None, first)
    fleet.record_measurements([int(first.ids[0])])  # exhausts it
    fleet.advance()
    second = fleet.announcements()
    assert second.token != first.token
    assert len(second) == len(first) - 1
    assert ValuationKernel.ensure(kernel, second) is not kernel

    moving = make_fleet(FleetConfig(), seed=11, n=20)
    a = moving.announcements()
    k = ValuationKernel.ensure(None, a)
    moving.advance()
    b = moving.announcements()
    assert b.token != a.token
    assert ValuationKernel.ensure(k, b) is not k


def test_stamp_stable_across_noop_advances():
    """A stationary fleet's version stamp survives any number of no-op
    advance calls — positions and exhaustion versions never tick, so every
    slot's announcement carries the identical stamp and token."""
    fleet = stationary_fleet()
    stamp = fleet._state.stamp
    first = fleet.announcements()
    for _ in range(5):
        fleet.advance()
        assert fleet._state.stamp == stamp
        assert fleet.announcements().token == first.token


def test_stamp_bumps_on_exhaustion_only_slots():
    """With nobody moving, recording until exhaustion must tick *only* the
    exhaustion component of the stamp — and only on the slot where a
    sensor actually crosses its lifetime, not on every measurement."""
    fleet = stationary_fleet(lifetime=2)
    first = fleet.announcements()
    sid = int(first.ids[0])
    _, _, positions_v0, exhaustion_v0 = fleet._state.stamp

    fleet.record_measurements([sid])  # 1 of 2 readings: not exhausted yet
    fleet.advance()
    _, _, positions_v1, exhaustion_v1 = fleet._state.stamp
    assert positions_v1 == positions_v0
    assert exhaustion_v1 == exhaustion_v0

    fleet.record_measurements([sid])  # 2 of 2: exhausts on this slot only
    fleet.advance()
    _, _, positions_v2, exhaustion_v2 = fleet._state.stamp
    assert positions_v2 == positions_v0
    assert exhaustion_v2 == exhaustion_v0 + 1
    assert sid not in set(fleet.announcements().ids)


def test_token_differs_across_fleets_with_identical_geometry():
    """Two distinct fleets with identical positions, configs and seeds
    must never share a token: a kernel built for one fleet would otherwise
    positively match the other's batch and serve it stale arrays."""
    a, b = stationary_fleet(), stationary_fleet()
    batch_a, batch_b = a.announcements(), b.announcements()
    np.testing.assert_array_equal(batch_a.xy, batch_b.xy)
    np.testing.assert_array_equal(batch_a.costs, batch_b.costs)
    assert batch_a.token != batch_b.token
    # The disagreement is exactly the per-fleet uid; versions and the
    # announce region still agree.
    assert batch_a.token[2:] == batch_b.token[2:]
    kernel = ValuationKernel.ensure(None, batch_a)
    assert ValuationKernel.ensure(kernel, batch_b) is not kernel


def test_token_survives_cost_only_changes():
    """Privacy-driven price moves do not invalidate the kernel (the token
    contract excludes announced costs)."""
    fleet = stationary_fleet()
    # Random privacy off; use a privacy fleet instead:
    rng = np.random.default_rng(3)
    positions = [Location(float(5 + i), 20.0) for i in range(10)]
    fleet = SensorFleet(
        StationaryMobility(REGION, positions),
        HOTSPOT,
        FleetConfig(random_privacy=True, privacy_window=3, lifetime=50),
        rng,
    )
    first = fleet.announcements()
    kernel = ValuationKernel.ensure(None, first)
    fleet.record_measurements([int(first.ids[0])])  # lifetime 50: not exhausted
    fleet.advance()
    second = fleet.announcements()
    assert second.token == first.token
    assert ValuationKernel.ensure(kernel, second) is kernel
    # The reporting sensor's privacy window makes its price move...
    assert second.costs[0] > first.costs[0]
    # ...while the kernel keeps serving (costs are a build-time snapshot).
    assert kernel.costs[0] == first.costs[0]


def test_same_slot_reannouncement_prices_current_report():
    """Announcing again after a same-slot recording must price the age-0
    report exactly like the scalar history walk (weight ``w``), not skip
    it — regression for the vectorized eq.-14 weight vector."""
    rng = np.random.default_rng(3)
    positions = [Location(float(5 + i), 20.0) for i in range(8)]
    fleet = SensorFleet(
        StationaryMobility(REGION, positions),
        HOTSPOT,
        FleetConfig(random_privacy=True, privacy_window=3, lifetime=50),
        rng,
    )
    first = fleet.announcements()
    fleet.record_measurements([int(first.ids[0]), int(first.ids[1])])
    again = fleet.announcements()  # same slot, after the recording
    reference = object_path_announcements(fleet)
    for j, snap in enumerate(reference):
        assert again.costs[j] == snap.cost


def test_token_distinguishes_announce_regions():
    """Out-of-protocol announce() calls against different regions must not
    share a token (the kernel would otherwise reuse the wrong arrays)."""
    fleet = stationary_fleet()
    state, clock = fleet.state, fleet.clock
    whole = state.announce(clock, REGION)
    hotspot = state.announce(clock, HOTSPOT)
    assert whole.token != hotspot.token
    kernel = ValuationKernel.from_batch(whole)
    assert not kernel.matches(hotspot)


def test_rebind_to_snapshot_list_keeps_the_stamp():
    """ensure() rebinding to an identity-equal plain list (the sequential
    baseline's zero-cost stage) must not wipe the batch stamp — the next
    slot's batch comparison stays O(1) instead of walking snapshots."""
    fleet = stationary_fleet()
    batch = fleet.announcements()
    kernel = ValuationKernel.ensure(None, batch)
    repriced = list(batch)  # same identity, token-less container
    assert ValuationKernel.ensure(kernel, repriced) is kernel
    assert kernel.sensors is repriced
    fleet.advance()
    again = fleet.announcements()  # stationary: same token
    # Stamp preserved -> O(1) positive match against the equal-token batch.
    assert kernel._stamp is not None
    assert kernel.matches(again)


def test_sequential_buffering_keeps_the_batch_lazy():
    """SequentialBufferedAllocation's zero-cost stage reprices the batch
    through a shared-identity cost view instead of materializing every
    snapshot; settlements stay invariant-clean."""
    from repro.core.engine import OneShotStream, SequentialBufferedAllocation

    fleet = stationary_fleet()
    batch = fleet.announcements()
    rng = np.random.default_rng(5)
    stage1 = OneShotStream(
        PointQueryWorkload(HOTSPOT, n_queries=2, budget=18.0, dmax=4.0),
        kind="aggregate",
    )
    stage2 = OneShotStream(
        PointQueryWorkload(HOTSPOT, n_queries=2, budget=18.0, dmax=4.0),
        kind="point",
    )
    for stream in (stage1, stage2):
        stream.begin_slot(0, rng, None)
    allocation = SequentialBufferedAllocation(GreedyAllocator(), GreedyAllocator())
    kernel = ValuationKernel.from_batch(batch)
    result = allocation.run(0, [stage1, stage2], batch, kernel)
    result.verify()
    materialized = sum(s is not None for s in batch._snapshots)
    assert materialized < len(batch)  # no full per-sensor walk happened


def test_with_costs_shares_identity_and_token():
    fleet = stationary_fleet()
    batch = fleet.announcements()
    zero = batch.with_costs(np.zeros(len(batch)))
    assert zero.token == batch.token
    assert zero.ids is batch.ids and zero.xy is batch.xy
    assert zero[0].cost == 0.0 and batch[0].cost == 10.0
    kernel = ValuationKernel.from_batch(batch)
    assert kernel.matches(zero)  # costs are excluded from identity
    with pytest.raises(ValueError):
        batch.with_costs(np.zeros(len(batch) + 1))


def test_record_measurements_validation():
    fleet = stationary_fleet(lifetime=1)
    batch = fleet.announcements()
    sid = int(batch.ids[0])
    with pytest.raises(ValueError, match="unknown sensor ids"):
        fleet.record_measurements([sid, 10**6])
    fleet.record_measurements([sid, sid, sid])  # dedupe: one reading
    assert fleet.sensor(sid).readings_taken == 1
    with pytest.raises(RuntimeError, match="exhausted"):
        fleet.record_measurements([sid])


def test_batch_is_a_lazy_snapshot_sequence():
    fleet = stationary_fleet()
    batch = fleet.announcements()
    assert len(batch) == len(list(batch))
    assert batch[0].sensor_id == int(batch.ids[0])
    assert batch[-1] == batch[len(batch) - 1]
    assert batch[1:3] == [batch[1], batch[2]]
    with pytest.raises(IndexError):
        batch[len(batch)]
    # Snapshots are cached: same object on re-access.
    assert batch[0] is batch[0]
