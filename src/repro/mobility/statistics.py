"""Trace statistics: the quantities the dataset substitutes must match.

The RNC substitute is credible exactly to the extent that the statistics
the algorithms consume match the paper's published ones.  This module
computes them from any :class:`~repro.mobility.trace.MobilityTrace` — ours
or a user-supplied real one — so substitutes can be validated (and
recalibrated) quantitatively:

* per-slot presence inside a working region (mean / min / max);
* churn: how many sensors enter and leave the region per slot;
* dwell: distribution of consecutive-slot stays inside the region;
* displacement: per-slot movement distances.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..spatial import Region
from .trace import MobilityTrace

__all__ = ["TraceStatistics", "compute_statistics"]


@dataclass(frozen=True)
class TraceStatistics:
    """Summary of one trace relative to a working region."""

    n_slots: int
    n_sensors: int
    mean_presence: float
    min_presence: int
    max_presence: int
    mean_entries_per_slot: float
    mean_exits_per_slot: float
    mean_dwell: float
    median_step: float
    p90_step: float

    def format(self) -> str:
        return "\n".join(
            [
                f"slots={self.n_slots} sensors={self.n_sensors}",
                (
                    f"presence: mean={self.mean_presence:.1f} "
                    f"min={self.min_presence} max={self.max_presence}"
                ),
                (
                    f"churn/slot: entries={self.mean_entries_per_slot:.1f} "
                    f"exits={self.mean_exits_per_slot:.1f}"
                ),
                f"dwell (slots in region): mean={self.mean_dwell:.1f}",
                f"step length: median={self.median_step:.2f} p90={self.p90_step:.2f}",
            ]
        )


def compute_statistics(trace: MobilityTrace, working_region: Region) -> TraceStatistics:
    """All substitute-validation statistics in one pass over the trace."""
    inside = np.zeros((trace.n_slots, trace.n_sensors), dtype=bool)
    for t, frame in enumerate(trace.frames):
        for i, location in enumerate(frame):
            inside[t, i] = working_region.contains(location)

    presence = inside.sum(axis=1)

    if trace.n_slots > 1:
        entered = (~inside[:-1] & inside[1:]).sum(axis=1)
        exited = (inside[:-1] & ~inside[1:]).sum(axis=1)
        mean_entries = float(entered.mean())
        mean_exits = float(exited.mean())
    else:
        mean_entries = mean_exits = 0.0

    # Dwell: lengths of maximal runs of consecutive in-region slots.
    dwells: list[int] = []
    for i in range(trace.n_sensors):
        run = 0
        for t in range(trace.n_slots):
            if inside[t, i]:
                run += 1
            elif run:
                dwells.append(run)
                run = 0
        if run:
            dwells.append(run)
    mean_dwell = float(np.mean(dwells)) if dwells else 0.0

    # Step lengths between consecutive frames.
    steps: list[float] = []
    for t in range(1, trace.n_slots):
        for a, b in zip(trace.frames[t - 1], trace.frames[t]):
            steps.append(a.distance_to(b))
    if steps:
        median_step = float(np.median(steps))
        p90_step = float(np.percentile(steps, 90))
    else:
        median_step = p90_step = 0.0

    return TraceStatistics(
        n_slots=trace.n_slots,
        n_sensors=trace.n_sensors,
        mean_presence=float(presence.mean()),
        min_presence=int(presence.min()),
        max_presence=int(presence.max()),
        mean_entries_per_slot=mean_entries,
        mean_exits_per_slot=mean_exits,
        mean_dwell=mean_dwell,
        median_step=median_step,
        p90_step=p90_step,
    )
