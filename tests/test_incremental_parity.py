"""Incremental-vs-full-rebuild parity: the differential slot state must be
bit-identical to rebuilding everything from scratch.

The contract under test (see ``repro.sensors.state.SlotDelta`` and the
``ensure_delta`` class methods): an announcement batch spliced from the
previous slot's batch carries unchanged rows verbatim and recomputes only
dirty ones through the *same* elementwise formulas, patched world rasters
carry containment/coverage rows for sensors that did not move, and the
spliced spatial index returns the same members per cell — so allocations
and the individual eq.-10 cost shares must match *exactly*, not just to
tolerance.  The replay harness (``repro.experiments.replay``) runs both
engines in lockstep and is itself exercised here across fleets x kernels
x pipelines.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core import ShardedKernel, ValuationKernel, delta_old_to_new
from repro.core.engine import normalize_incremental
from repro.datasets import ScenarioSpec, StreamSpec
from repro.experiments import allocation_signature, replay_spec
from repro.mobility import ChurnMobility, RandomWaypointMobility
from repro.sensors import FleetConfig, SensorFleet, SlotDelta, TieredTrust
from repro.spatial import Region, UniformGridIndex, WorldRaster

REGION = Region.from_origin(40, 40)
HOTSPOT = Region.centered_in(REGION, 26, 26)

#: Announcement-relevant fleet configs: every pricing model the delta's
#: repriced-set derivation has to reason about.
CONFIGS = {
    "paper_default": FleetConfig(),
    "linear_energy": FleetConfig(linear_energy=True, lifetime=4),
    "random_privacy": FleetConfig(random_privacy=True, privacy_window=3),
    "linear_and_privacy": FleetConfig(
        linear_energy=True,
        beta_range=(0.5, 3.0),
        random_privacy=True,
        privacy_window=4,
        lifetime=5,
    ),
    "tiered_trust_linear": FleetConfig(
        trust_model=TieredTrust(), linear_energy=True, lifetime=3
    ),
}


def waypoint_fleet(config: FleetConfig, seed: int = 7, n: int = 60) -> SensorFleet:
    rng = np.random.default_rng(seed)
    return SensorFleet(RandomWaypointMobility(REGION, n, rng), HOTSPOT, config, rng)


def churn_fleet(
    config: FleetConfig, seed: int = 7, n: int = 60, fraction: float = 0.1
) -> SensorFleet:
    rng = np.random.default_rng(seed)
    return SensorFleet(
        ChurnMobility(REGION, n, rng, fraction=fraction), HOTSPOT, config, rng
    )


def assert_batches_identical(spliced, fresh):
    """Bit-exact equality of every announced array (and the token)."""
    np.testing.assert_array_equal(spliced.ids, fresh.ids)
    np.testing.assert_array_equal(spliced.xy, fresh.xy)
    np.testing.assert_array_equal(spliced.costs, fresh.costs)
    np.testing.assert_array_equal(spliced.gamma, fresh.gamma)
    np.testing.assert_array_equal(spliced.trust, fresh.trust)
    assert spliced.token == fresh.token


# ----------------------------------------------------------------------
# layer 1: the spliced announcement batch
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", CONFIGS, ids=list(CONFIGS))
@pytest.mark.parametrize("make", [waypoint_fleet, churn_fleet], ids=["rwp", "churn"])
def test_announce_update_matches_fresh_announce(name, make):
    """Chained deltas across slots (with measurements driving exhaustion
    and privacy repricing) must reproduce the full announce exactly."""
    config = CONFIGS[name]
    inc, ref = make(config, seed=11), make(config, seed=11)
    rng = np.random.default_rng(3)
    for t in range(8):
        spliced, delta = inc.announcements_with_delta()
        fresh = ref.announcements()
        # Distinct fleets never share the uid part of the token; versions
        # and region must still agree.
        np.testing.assert_array_equal(spliced.ids, fresh.ids)
        np.testing.assert_array_equal(spliced.xy, fresh.xy)
        np.testing.assert_array_equal(spliced.costs, fresh.costs)
        np.testing.assert_array_equal(spliced.gamma, fresh.gamma)
        np.testing.assert_array_equal(spliced.trust, fresh.trust)
        assert spliced.token[2:] == fresh.token[2:]
        if t > 0:
            assert isinstance(delta, SlotDelta)
        if len(fresh.ids):
            k = max(1, len(fresh.ids) // 3)
            picked = rng.choice(np.asarray(fresh.ids), size=k, replace=False)
            inc.record_measurements(list(picked))
            ref.record_measurements(list(picked))
        inc.advance()
        ref.advance()


def test_delta_bookkeeping_is_consistent():
    """kept_src / fresh / stale partition the old and new column spaces."""
    fleet = churn_fleet(FleetConfig(), seed=5, n=80, fraction=0.2)
    prev, _ = fleet.announcements_with_delta()
    fleet.advance()
    batch, delta = fleet.announcements_with_delta()
    assert isinstance(delta, SlotDelta)
    assert delta.prev_token == prev.token
    assert delta.token == batch.token
    kept = delta.kept_src
    assert len(kept) == len(batch.ids)
    valid = kept >= 0
    # Every kept column maps to the previous column with the same id.
    np.testing.assert_array_equal(
        np.asarray(batch.ids)[valid], np.asarray(prev.ids)[kept[valid]]
    )
    # fresh = new announcers or moved survivors; dropped ids show in stale.
    fresh = set(np.flatnonzero(~valid))
    assert fresh <= set(delta.fresh_cols)
    dropped = set(prev.ids) - set(batch.ids)
    assert dropped == {prev.ids[j] for j in delta.stale_cols} - set(batch.ids) | dropped
    assert 0.0 <= delta.churn_fraction <= 1.0


# ----------------------------------------------------------------------
# layer 2: spliced spatial index and patched raster
# ----------------------------------------------------------------------
def test_grid_index_updated_matches_fresh_build():
    """A spliced index keeps the *frozen* geometry (a fresh build re-derives
    its extent from the new points, so cell ids differ); parity is at the
    query level — every box query returns a superset of the exact matches,
    and the index stays self-consistent: each bucket holds exactly the
    points whose coordinates map to that cell, in ascending order."""
    rng = np.random.default_rng(0)
    xy = rng.uniform(0, 40, size=(400, 2))
    index = UniformGridIndex(xy, 2.5)
    for step in range(6):
        new_xy = xy.copy()
        movers = rng.choice(len(xy), size=12, replace=False)
        new_xy[movers] = rng.uniform(0, 40, size=(12, 2))
        old_to_new = np.arange(len(xy), dtype=np.int64)
        patched = index.updated(new_xy, old_to_new, movers.astype(np.intp))
        assert patched is not None
        assert patched.n_points == len(new_xy)
        # Self-consistency: buckets partition the points by the patched
        # index's own cell function, ascending within each bucket.
        total = 0
        for cell, members in patched.shards():
            assert np.all(np.diff(members) > 0)
            for i in members:
                assert patched.cell_of(new_xy[i, 0], new_xy[i, 1]) == cell
            total += len(members)
        assert total == len(new_xy)
        # Query parity vs brute force, for both the patched and a fresh
        # index: candidates are supersets of the exact box membership.
        for _ in range(8):
            x0, y0 = rng.uniform(0, 35, size=2)
            x1, y1 = x0 + rng.uniform(1, 8), y0 + rng.uniform(1, 8)
            exact = set(
                np.flatnonzero(
                    (new_xy[:, 0] >= x0) & (new_xy[:, 0] <= x1)
                    & (new_xy[:, 1] >= y0) & (new_xy[:, 1] <= y1)
                )
            )
            assert exact <= set(patched.indices_in_box(x0, x1, y0, y1))
        xy, index = new_xy, patched


def test_grid_index_updated_refuses_escapes_and_heavy_churn():
    rng = np.random.default_rng(1)
    xy = rng.uniform(0, 40, size=(100, 2))
    index = UniformGridIndex(xy, 4.0)
    escaped = xy.copy()
    escaped[3] = (999.0, 999.0)  # outside the frozen extent
    assert index.updated(escaped, np.arange(100), np.array([3])) is None
    # Churn above the threshold: a full rebuild is cheaper than splicing.
    heavy = rng.uniform(0, 40, size=(100, 2))
    assert index.updated(heavy, np.arange(100), np.arange(100)) is None


def test_raster_patch_matches_fresh_raster():
    rng = np.random.default_rng(2)
    xy = rng.uniform(0, 40, size=(300, 2))
    raster = WorldRaster(xy)
    regions = [
        Region(5, 5, 15, 20),
        Region(0, 0, 40, 40),
        Region(30, 2, 39, 9),
    ]
    for region in regions:  # warm the caches the patch must carry
        raster.exterior_distance_sq(region)
        raster.contains_mask(region)
    for step in range(4):
        new_xy = xy.copy()
        movers = rng.choice(len(xy), size=10, replace=False)
        new_xy[movers] = rng.uniform(0, 40, size=(10, 2))
        patched = raster.patched(
            new_xy, np.arange(len(xy), dtype=np.int64), movers
        )
        fresh = WorldRaster(new_xy)
        for region in regions:
            np.testing.assert_array_equal(
                patched.exterior_distance_sq(region),
                fresh.exterior_distance_sq(region),
            )
            np.testing.assert_array_equal(
                patched.contains_mask(region), fresh.contains_mask(region)
            )
        xy, raster = new_xy, patched


# ----------------------------------------------------------------------
# layer 3: kernels patched through ensure_delta
# ----------------------------------------------------------------------
@pytest.mark.parametrize("sharded", [False, True], ids=["dense", "sharded"])
def test_ensure_delta_falls_back_without_a_chain(sharded):
    """A delta that does not chain from the held kernel's batch (or no
    delta at all) must still yield a correct kernel via full rebuild."""
    fleet = churn_fleet(FleetConfig(), seed=9, n=70)
    batch, _ = fleet.announcements_with_delta()
    cls = ShardedKernel if sharded else ValuationKernel
    kernel = cls.ensure_delta(None, batch, None)
    assert kernel is not None
    fleet.advance()
    fleet.advance()  # skip a slot: the delta chains from the *previous*
    stale_prev, stale_delta = fleet.announcements_with_delta()
    # Forge a break: hand the old kernel a delta chained elsewhere.
    again = cls.ensure_delta(kernel, stale_prev, stale_delta)
    ref = cls.from_batch(stale_prev)
    np.testing.assert_array_equal(again.sensor_xy, ref.sensor_xy)
    np.testing.assert_array_equal(again.costs, ref.costs)


def test_delta_old_to_new_roundtrip():
    delta = SlotDelta(
        prev_token=("p",),
        token=("t",),
        moved=np.array([2]),
        exhausted=np.array([], dtype=np.int64),
        repriced=np.array([], dtype=np.int64),
        kept_src=np.array([0, -1, 3]),
        fresh_cols=np.array([1]),
        stale_cols=np.array([1, 2]),
        membership_changed=True,
    )
    old_to_new = delta_old_to_new(delta, 4)
    np.testing.assert_array_equal(old_to_new, [0, -1, -1, 2])


# ----------------------------------------------------------------------
# layer 4: end-to-end lockstep replay, fleets x kernels x pipelines
# ----------------------------------------------------------------------
STREAMS = (
    StreamSpec("point", params={"n_queries": 15, "budget": 12.0}),
    StreamSpec(
        "aggregate",
        params={"mean_queries": 4, "count_spread": 2, "min_side": 4.0},
    ),
)

FLEETS = {
    # ~stationary: nobody moves, exhaustion is the only churn.
    "stationary": {"mobility": {"kind": "churn", "fraction": 0.0}},
    # low-churn recorded trace: the incremental path's home regime.
    "trace": {"mobility": {"kind": "churn", "fraction": 0.05}},
    # everyone moves every slot: worst case, still must agree.
    "waypoint": {},
}


@pytest.mark.parametrize("fused", [None, False], ids=["fused-auto", "fused-off"])
@pytest.mark.parametrize("sharding", [None, "auto"], ids=["dense", "sharded"])
@pytest.mark.parametrize("fleet", FLEETS, ids=list(FLEETS))
def test_replay_parity(fleet, sharding, fused):
    spec = ScenarioSpec(
        name=f"replay-{fleet}",
        n_sensors=200,
        n_slots=4,
        seed=23,
        streams=STREAMS,
        sharding=sharding,
        fused=fused,
        fleet={"linear_energy": True, "random_privacy": True, "lifetime": 6},
        **FLEETS[fleet],
    )
    report = replay_spec(spec)
    assert report.n_slots == 4
    assert report.parity, report.format()
    assert all(0.0 <= s.churn_fraction <= 1.0 for s in report.slots)


def test_replay_report_csv_and_format(tmp_path):
    spec = ScenarioSpec(
        name="replay-csv",
        n_sensors=120,
        n_slots=3,
        seed=31,
        streams=STREAMS,
        mobility={"kind": "churn", "fraction": 0.1},
    )
    report = replay_spec(spec)
    assert report.parity
    text = report.format()
    assert "parity OK" in text and "announce" in text
    out = tmp_path / "replay.csv"
    report.write_csv(out)
    lines = out.read_text().splitlines()
    assert len(lines) == 1 + 3
    header = lines[0].split(",")
    assert header[:3] == ["slot", "churn_fraction", "parity"]
    assert "t_allocate_full" in header and "t_kernel_incremental" in header
    # Every row carries the parity flag the harness asserted on.
    assert all(row.split(",")[2] == "1" for row in lines[1:])


def test_allocation_signature_canonicalizes_query_ids():
    """Two engines label identical queries differently (process-global id
    counter); the signature must equate them by generation order."""
    from repro.core import AllocationResult

    a = AllocationResult(
        selected={},
        assignments={"q10": (1, 2), "q11": (3,)},
        values={"q10": 1.5, "q11": 0.25},
        payments={("q10", 1): 0.75, ("q10", 2): 0.75, ("q11", 3): 0.25},
    )
    b = AllocationResult(
        selected={},
        assignments={"q57": (1, 2), "q58": (3,)},
        values={"q57": 1.5, "q58": 0.25},
        payments={("q57", 1): 0.75, ("q57", 2): 0.75, ("q58", 3): 0.25},
    )
    assert allocation_signature(a) == allocation_signature(b)
    c = AllocationResult(
        selected={},
        assignments={"q57": (1, 2), "q58": (3,)},
        values={"q57": 1.5, "q58": 0.2500000001},
        payments={("q57", 1): 0.75, ("q57", 2): 0.75, ("q58", 3): 0.25},
    )
    assert allocation_signature(a) != allocation_signature(c)


def test_normalize_incremental_contract():
    assert normalize_incremental(None) is False
    assert normalize_incremental(False) is False
    assert normalize_incremental(True) == "auto"
    assert normalize_incremental("auto") == "auto"
    with pytest.raises(ValueError):
        normalize_incremental("sometimes")
