"""Ablation: sparse vs dense BILP formulation (Section 3.1.1 / eq. 10).

The paper's eq. 10 assigns -1 to valueless (location, sensor) pairs purely
to forbid them; our default formulation prunes those variables instead.
This bench shows both return the same optimum while the sparse model is an
order of magnitude smaller/faster at realistic densities.
"""

from __future__ import annotations

import time

import numpy as np

from conftest import run_once
from repro.core import OptimalPointAllocator
from repro.queries import PointQueryWorkload
from repro.sensors import SensorSnapshot
from repro.spatial import Region


def build_slot(n_sensors=80, n_queries=120):
    rng = np.random.default_rng(2013)
    region = Region.from_origin(50, 50)
    sensors = [
        SensorSnapshot(i, region.sample_location(rng), 10.0, float(rng.uniform(0, 0.2)), 1.0)
        for i in range(n_sensors)
    ]
    queries = PointQueryWorkload(region, n_queries=n_queries, budget=15.0, dmax=5.0).generate(
        0, rng
    )
    return queries, sensors


def sweep():
    queries, sensors = build_slot()
    rows = []
    for name, allocator in [
        ("sparse", OptimalPointAllocator(sparse=True)),
        ("dense", OptimalPointAllocator(sparse=False)),
    ]:
        start = time.perf_counter()
        result = allocator.allocate(queries, sensors)
        rows.append((name, result.total_utility, time.perf_counter() - start))
    return rows


def test_bilp_formulation_ablation(benchmark):
    rows = run_once(benchmark, sweep)
    print("\nformulation   utility     time")
    for name, utility, elapsed in rows:
        print(f"{name:11s}  {utility:8.1f}  {elapsed * 1e3:7.1f}ms")
    # Equivalence: identical optimum from both formulations.
    assert rows[0][1] == rows[1][1] or abs(rows[0][1] - rows[1][1]) < 1e-6
