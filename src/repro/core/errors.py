"""Exception hierarchy for the data-acquisition core."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "AllocationError",
    "PaymentInvariantError",
    "SolverError",
]


class ReproError(Exception):
    """Base class for all library-specific errors."""


class AllocationError(ReproError):
    """An allocator received inconsistent inputs (duplicate ids, …)."""


class PaymentInvariantError(ReproError):
    """A settlement violated a Theorem-1 invariant (cost recovery,
    non-negative individual utility, …)."""


class SolverError(ReproError):
    """The underlying ILP solver failed or returned a non-optimal status."""
