"""Spatial aggregate and trajectory queries (Sections 2.2.2, 2.2.3).

Eq. (5) values a sensor set for an aggregate query over a region as::

    v_q(S_q) = B_q * G_q(S_q) * (sum_{s in S_q} theta_s) / |S_q|

coverage times mean reading quality, scaled by the budget.  The paper
stresses (Section 3.2) that this function is *not* submodular even though
the coverage term alone is: "involving sensor quality in evaluation of a
set of sensors destroys the submodularity of the function" — our property
tests exhibit exactly such counterexamples.

A query over a trajectory "can be treated as a special case of spatial
aggregate query in which instead of providing a region of interest, a
trajectory is specified" (Section 2.2.3); :class:`TrajectoryQuery` performs
that reduction with a corridor coverage function.

Gain evaluation is layered: :class:`_CoverageState` answers scalar
``gain``; :class:`_CoverageBatch` vectorizes ``gain_many`` against a
(lazily built) dense coverage-mask matrix; and :class:`_CoverageBlock`
fuses a whole slot's same-type batches into one evaluator indexing the
shared :class:`~repro.spatial.raster.WorldRaster` covered-cell CSR rows —
no per-query mask matrices at all.  All three produce bit-identical gains
(the batch/block layers reuse the scalar layer's arithmetic sequence).
"""

from __future__ import annotations

import enum
from typing import Sequence

import numpy as np

from ..sensors import SensorSnapshot
from ..spatial import (
    AreaCoverage,
    CoverageFunction,
    Location,
    Region,
    Trajectory,
    TrajectoryCoverage,
    as_xy,
)
from ..spatial.coverage import masks_for_xy
from .base import (
    BatchGainState,
    GainBlock,
    Query,
    QueryType,
    SensorRoster,
    ValuationState,
    workspace_of,
)

__all__ = ["AggregateOp", "SpatialAggregateQuery", "TrajectoryQuery", "sensor_quality"]


class AggregateOp(enum.Enum):
    """The aggregate requested by the user (semantic label; the valuation
    of eq. (5) depends on coverage and quality, not on the operator)."""

    AVG = "avg"
    MIN = "min"
    MAX = "max"
    SUM = "sum"


def sensor_quality(snapshot: SensorSnapshot) -> float:
    """Reading quality of a sensor *inside* a queried region.

    Eq. (4)'s distance term measures correlation decay between the sensor
    and a queried point; for region queries the sensors stand in the region
    and cover the cells around them, so quality reduces to the inaccuracy
    and trust terms: ``theta_s = (1 - gamma_s) * tau_s``.
    """
    return (1.0 - snapshot.inaccuracy) * snapshot.trust


class _CoverageBatch(BatchGainState):
    """Aggregate-query batch gains via a stacked coverage-mask matrix.

    Built once per allocator call: an ``(n_relevant, n_cells)`` boolean
    matrix of per-candidate coverage masks plus the ``(1-gamma)*tau``
    quality column.  A :meth:`gain_many` round is then pure boolean/array
    arithmetic against the live state's accumulated mask — integer cell
    counts and the exact eq.-(5) operation order keep every gain
    bit-identical to the scalar :meth:`_CoverageState.gain`.
    """

    def __init__(self, state: "_CoverageState", roster: SensorRoster) -> None:
        super().__init__(state, roster)
        query = state.query
        relevant = roster.relevance_row(query)
        self._relevant = relevant
        self._rel_idx = np.flatnonzero(relevant)
        # Row index into the mask matrix per roster column (-1: irrelevant).
        self._mask_row = np.full(roster.n_sensors, -1, dtype=np.intp)
        self._mask_row[self._rel_idx] = np.arange(len(self._rel_idx))
        # The dense mask matrix builds lazily: the fused block path indexes
        # the slot raster's CSR coverage rows instead and never needs it.
        self._masks: np.ndarray | None = None
        self._quality = (1.0 - roster.gamma) * roster.trust

    @property
    def masks(self) -> np.ndarray:
        """``(n_relevant, n_cells)`` per-candidate coverage masks (lazy).

        Masks come straight from the roster's shared coordinate block — no
        Location objects, no snapshot materialization (built-in coverage
        functions take (n, 2) arrays natively; legacy overrides still get
        Location sequences via :func:`masks_for_xy`).
        """
        if self._masks is None:
            self._masks = masks_for_xy(
                self.state.query.coverage, self.roster.xy[self._rel_idx]
            )
        return self._masks

    def gain_many(self, indices: np.ndarray) -> np.ndarray:
        state = self.state
        query = state.query
        n_cells = query.coverage.cell_count
        count = len(state.selected) + 1
        base_covered = int(state._mask.sum())
        counts = np.full(len(indices), base_covered, dtype=np.int64)
        quality_sums = np.full(len(indices), state._quality_sum, dtype=float)
        rel_pos = np.flatnonzero(self._relevant[indices])
        if rel_pos.size:
            rel_cols = indices[rel_pos]
            rows = self.masks[self._mask_row[rel_cols]]
            counts[rel_pos] += (rows & ~state._mask).sum(axis=1)
            quality_sums[rel_pos] = state._quality_sum + self._quality[rel_cols]
        coverage = counts / n_cells if n_cells else np.zeros(len(indices))
        value_new = (query.budget * coverage) * (quality_sums / count)
        return value_new - state.value

    @classmethod
    def block(cls, members) -> GainBlock:
        return _CoverageBlock(members)

    def _coverage_rows(self) -> tuple[np.ndarray, np.ndarray]:
        """CSR covered-cell rows over the relevant roster columns.

        Prefers the slot raster's shared (and box-accelerated) builder;
        rosters without one fall back to the dense mask matrix's nonzero
        structure.  Either way the row memberships are exactly the dense
        matrix's ``True`` positions (see :mod:`repro.spatial.raster`).
        """
        raster = self.roster.raster
        if raster is not None:
            kernel_columns = self.roster.kernel_columns
            world_cols = (
                self._rel_idx
                if kernel_columns is None
                else kernel_columns[self._rel_idx]
            )
            return raster.coverage_rows(self.state.query.coverage, world_cols)
        rows, cells = np.nonzero(self.masks)
        counts = np.bincount(rows, minlength=len(self._rel_idx))
        indptr = np.zeros(len(self._rel_idx) + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return indptr, cells.astype(np.int64, copy=False)


class _CoverageBlock(GainBlock):
    """Fused eq.-(5) gains for a slot's aggregate queries over shared CSR rows.

    All members' covered-cell rows live in one concatenated cell index
    space (per-member offsets).  A round's pairs gather their covered
    cells in one flattened pass, count the *uncovered* ones against a
    per-member uncovered-cell vector refreshed from the live states
    (``np.bincount`` with 0/1 float weights — exact integer sums), and
    finish with the exact per-pair eq.-(5) operation order of
    :meth:`_CoverageBatch.gain_many`, so fused gains are bit-identical to
    the per-member path.  Callers must pass *relevant* pairs only (the
    greedy allocator's dirty pairs are relevance-filtered by construction);
    the base :class:`GainBlock` remains the evaluator for arbitrary pairs.
    """

    def __init__(self, members) -> None:
        super().__init__(members)
        m = len(self.members)
        n = self.members[0].roster.n_sensors if self.members else 0
        # Scratch comes from the driving allocator's slot workspace (the
        # roster carries it); the tag scopes this block's arena names so
        # warm calls re-hit the same arenas per query type.
        ws = workspace_of(self.members[0].roster if self.members else None)
        tag = ws.tag("covblock")
        self._ws = ws
        self._tag = tag
        cell_counts = np.fromiter(
            (b.state.query.coverage.cell_count for b in self.members), np.int64, m
        )
        self._n_cells = cell_counts.astype(float)
        self._cell_off = ws.zeros(f"{tag}:cell_off", m + 1, dtype=np.int64)
        np.cumsum(cell_counts, out=self._cell_off[1:])
        self._uncovered = ws.zeros(
            f"{tag}:uncovered", int(self._cell_off[-1]), dtype=float
        )
        self._budgets = np.fromiter(
            (b.state.query.budget for b in self.members), float, m
        )
        self._qualities = ws.empty(f"{tag}:qualities", (m, n), dtype=float)
        # Per-(member, roster column) slice into the concatenated cell ids.
        self._start = ws.zeros(f"{tag}:start", (m, n), dtype=np.int64)
        self._len = ws.zeros(f"{tag}:len", (m, n), dtype=np.int64)
        chunks = []
        base = 0
        for p, member in enumerate(self.members):
            self._qualities[p] = member._quality
            indptr, cells = member._coverage_rows()
            rel_idx = member._rel_idx
            if rel_idx.size:
                self._start[p, rel_idx] = indptr[:-1] + base
                self._len[p, rel_idx] = np.diff(indptr)
            chunks.append(cells + self._cell_off[p])
            base += len(cells)
        self._cells = ws.empty(f"{tag}:cells", base, dtype=np.int64)
        if chunks:
            np.concatenate(chunks, out=self._cells)

    def gain_many_block(
        self, member_idx: np.ndarray, indices: np.ndarray
    ) -> np.ndarray:
        members = self.members
        n_members = len(members)
        ws, tag = self._ws, self._tag
        base_covered = ws.zeros(f"{tag}:base_covered", n_members, dtype=float)
        quality_sums = ws.zeros(f"{tag}:quality_sums", n_members, dtype=float)
        counts_sel = ws.ones(f"{tag}:counts_sel", n_members, dtype=float)
        values = ws.zeros(f"{tag}:values", n_members, dtype=float)
        for u in np.unique(member_idx):
            state = members[u].state
            self._uncovered[self._cell_off[u] : self._cell_off[u + 1]] = ~state._mask
            base_covered[u] = state._mask.sum()
            quality_sums[u] = state._quality_sum
            counts_sel[u] = len(state.selected) + 1
            values[u] = state.value
        starts = self._start[member_idx, indices]
        lens = self._len[member_idx, indices]
        total = int(lens.sum())
        if total:
            prev = ws.zeros(f"{tag}:prev", len(member_idx), dtype=np.int64)
            np.cumsum(lens[:-1], out=prev[1:])
            ids = self._cells[np.repeat(starts - prev, lens) + np.arange(total)]
            pair_of = np.repeat(np.arange(len(member_idx)), lens)
            new_covered = np.bincount(
                pair_of, weights=self._uncovered[ids], minlength=len(member_idx)
            )
        else:
            new_covered = ws.zeros(f"{tag}:new_covered", len(member_idx), dtype=float)
        counts = base_covered[member_idx] + new_covered
        n_cells = self._n_cells[member_idx]
        empty = n_cells == 0.0
        coverage = counts / np.where(empty, 1.0, n_cells)
        coverage[empty] = 0.0
        qsums = quality_sums[member_idx] + self._qualities[member_idx, indices]
        value_new = (self._budgets[member_idx] * coverage) * (
            qsums / counts_sel[member_idx]
        )
        return value_new - values[member_idx]


class _CoverageState(ValuationState):
    """Incremental eq.-(5) evaluation via accumulated coverage masks.

    Keeps the bit-mask of covered cells, the quality sum and the member
    count; a marginal gain is then one ``mask_for`` call plus O(#cells)
    boolean arithmetic instead of a full re-rasterization of the set.
    """

    def __init__(self, query: "SpatialAggregateQuery") -> None:
        super().__init__(query)
        self._mask = np.zeros(query.coverage.cell_count, dtype=bool)
        self._quality_sum = 0.0

    def _value_with(self, extra_mask: np.ndarray | None, extra_quality: float | None) -> float:
        covered = self._mask if extra_mask is None else (self._mask | extra_mask)
        count = len(self.selected) + (0 if extra_quality is None else 1)
        if count == 0:
            return 0.0
        quality_sum = self._quality_sum + (extra_quality or 0.0)
        n_cells = self.query.coverage.cell_count
        coverage = covered.sum() / n_cells if n_cells else 0.0
        return self.query.budget * coverage * (quality_sum / count)

    def gain(self, snapshot: SensorSnapshot) -> float:
        if self.query.relevant(snapshot):
            mask = self.query.coverage.mask_for(snapshot.location)
            quality = sensor_quality(snapshot)
        else:
            mask, quality = None, 0.0
        return self._value_with(mask, quality) - self.value

    def add(self, snapshot: SensorSnapshot) -> float:
        before = self.value
        if self.query.relevant(snapshot):
            self._mask |= self.query.coverage.mask_for(snapshot.location)
            self._quality_sum += sensor_quality(snapshot)
        self.selected.append(snapshot)
        self.value = self._value_with(None, None)
        return self.value - before

    def batch(self, roster: SensorRoster) -> BatchGainState:
        return _CoverageBatch(self, roster)


class SpatialAggregateQuery(Query):
    """Aggregate query over a rectangular region with the eq. (5) valuation."""

    def __init__(
        self,
        region: Region,
        budget: float,
        sensing_range: float = 10.0,
        op: AggregateOp = AggregateOp.AVG,
        coverage: CoverageFunction | None = None,
        coverage_radius: float | None = None,
        query_id: str | None = None,
        issued_at: int = 0,
    ) -> None:
        super().__init__(budget, query_id, issued_at)
        if sensing_range <= 0:
            raise ValueError("sensing_range must be positive")
        if coverage_radius is not None and coverage_radius <= 0:
            raise ValueError("coverage_radius must be positive")
        self.region = region
        self.sensing_range = sensing_range
        self.op = op
        # ``sensing_range`` bounds which sensors may *serve* the query
        # (eq. 4's dmax); ``coverage_radius`` bounds the area one reading
        # *represents* for the coverage term of eq. 5 — physical phenomena
        # decorrelate far faster than a device can be asked for data, so
        # the default keeps them separate (see DESIGN.md / EXPERIMENTS.md).
        self.coverage_radius = (
            coverage_radius if coverage_radius is not None else sensing_range
        )
        self.coverage = (
            coverage
            if coverage is not None
            else AreaCoverage(region, self.coverage_radius)
        )

    @property
    def query_type(self) -> QueryType:
        return QueryType.AGGREGATE

    def value(self, snapshots: Sequence[SensorSnapshot]) -> float:
        """Eq. (5): budget * coverage * mean quality.

        Sensors whose sensing disk cannot reach the region contribute no
        coverage and zero quality (they cannot report about the region), so
        adding one never increases the valuation.
        """
        if not snapshots:
            return 0.0
        eligible = [s for s in snapshots if self.relevant(s)]
        coverage = self.coverage([s.location for s in eligible])
        quality_sum = sum(sensor_quality(s) for s in eligible)
        return self.budget * coverage * (quality_sum / len(snapshots))

    def relevant(self, snapshot: SensorSnapshot) -> bool:
        """Sensor is useful iff its sensing disk reaches the region."""
        loc = snapshot.location
        dx = max(self.region.x_min - loc.x, 0.0, loc.x - self.region.x_max)
        dy = max(self.region.y_min - loc.y, 0.0, loc.y - self.region.y_max)
        return (dx * dx + dy * dy) <= self.sensing_range**2

    def relevant_mask(
        self,
        xy: np.ndarray,
        gamma: np.ndarray | None = None,
        trust: np.ndarray | None = None,
    ) -> np.ndarray:
        """Vectorized :meth:`relevant` (purely geometric; ``gamma``/``trust``
        are ignored).  Element-for-element the same clamped-axis arithmetic
        as the scalar predicate, so the two can never disagree."""
        return self.region.exterior_distance_sq(as_xy(xy)) <= self.sensing_range**2

    def new_state(self) -> ValuationState:
        return _CoverageState(self)


class TrajectoryQuery(SpatialAggregateQuery):
    """Aggregate along a trajectory, reduced to corridor coverage.

    The region of interest is the trajectory's corridor of half-width
    ``sensing_range``; coverage counts path sample points instead of region
    cells, everything else (eq. (5) shape, greedy machinery) is inherited.
    """

    def __init__(
        self,
        trajectory: Trajectory,
        budget: float,
        sensing_range: float = 10.0,
        op: AggregateOp = AggregateOp.MAX,
        spacing: float = 1.0,
        query_id: str | None = None,
        issued_at: int = 0,
    ) -> None:
        coverage = TrajectoryCoverage(trajectory, sensing_range, spacing)
        super().__init__(
            region=trajectory.bounding_region(margin=sensing_range),
            budget=budget,
            sensing_range=sensing_range,
            op=op,
            coverage=coverage,
            query_id=query_id,
            issued_at=issued_at,
        )
        self.trajectory = trajectory

    @property
    def query_type(self) -> QueryType:
        return QueryType.TRAJECTORY

    def relevant(self, snapshot: SensorSnapshot) -> bool:
        """Useful iff the sensing disk reaches the trajectory corridor.

        Routed through :meth:`relevant_mask` with ``n = 1`` so the scalar
        and batch predicates share one distance computation and cannot
        diverge (``np.hypot`` everywhere; the historical ``math.hypot``
        scalar could differ in the final ulp).
        """
        loc = snapshot.location
        return bool(self.relevant_mask(np.asarray([[loc.x, loc.y]]))[0])

    def relevant_mask(
        self,
        xy: np.ndarray,
        gamma: np.ndarray | None = None,
        trust: np.ndarray | None = None,
    ) -> np.ndarray:
        """Vectorized corridor-reach test (purely geometric)."""
        return self.trajectory.distance_to_many(as_xy(xy)) <= 2 * self.sensing_range

    def nearest_path_distance(self, location: Location) -> float:
        return self.trajectory.distance_to(location)
